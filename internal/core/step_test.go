package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"muse/internal/core"
	"muse/internal/designer"
	"muse/internal/mapping"
	"muse/internal/parser"
	"muse/internal/scenarios"
)

func formatSet(s *mapping.Set) string {
	out := ""
	for _, m := range s.Mappings {
		out += parser.FormatMapping(m) + "\n"
	}
	return out
}

// fig1Oracle scripts the intended Fig. 1 design: projects grouped by
// company name.
func fig1Oracle() *designer.GroupingOracle {
	return &designer.GroupingOracle{Desired: map[string][]mapping.Expr{
		"SKProjects": {mapping.E("c", "cname")},
	}}
}

// driveStepper answers every pending question of st with the given
// oracles until the terminal step, which it returns.
func driveStepper(t *testing.T, st *core.Stepper, gd core.GroupingDesigner, choices [][]int) core.Step {
	t.Helper()
	for i := 0; i < 100; i++ {
		step, err := st.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if step.Done {
			return step
		}
		var a core.Answer
		switch {
		case step.Grouping != nil:
			ans, err := gd.ChooseScenario(step.Grouping)
			if err != nil {
				t.Fatal(err)
			}
			a = core.Answer{Scenario: ans}
		case step.Choice != nil:
			a = core.Answer{Choices: choices}
		default:
			t.Fatal("step is neither pending nor done")
		}
		if _, err := st.Answer(context.Background(), a); err != nil {
			t.Fatal(err)
		}
	}
	t.Fatal("dialog did not terminate within 100 questions")
	return core.Step{}
}

// TestStepperMatchesSessionRun drives the inverted dialog on Fig. 1
// and checks the refined mapping set is byte-identical to the
// callback-style Session.Run with the same designer.
func TestStepperMatchesSessionRun(t *testing.T) {
	fig := scenarios.NewFigure1(true)
	oracle := fig1Oracle()

	direct, err := core.NewSession(fig.SrcDeps, fig.Source).Run(fig.Set, oracle, nil)
	if err != nil {
		t.Fatal(err)
	}

	st := core.NewStepper(context.Background(), core.NewSession(fig.SrcDeps, fig.Source), fig.Set)
	defer st.Close()
	final := driveStepper(t, st, oracle, nil)
	if final.Err != nil {
		t.Fatal(final.Err)
	}
	if got, want := formatSet(final.Result), formatSet(direct); got != want {
		t.Fatalf("stepper result differs from Session.Run:\n--- stepper ---\n%s--- direct ---\n%s", got, want)
	}
	if !st.Done() {
		t.Fatal("stepper not Done after terminal step")
	}
}

// TestStepperChoiceQuestion drives the Fig. 4 ambiguous mapping
// through the stepper and compares against the in-process run.
func TestStepperChoiceQuestion(t *testing.T) {
	fig := scenarios.NewFigure4()
	sel := [][]int{{0}, {1}}

	direct, err := core.NewSession(fig.SrcDeps, fig.Source).
		Run(fig.Set, nil, &designer.ChoiceOracle{Selections: sel})
	if err != nil {
		t.Fatal(err)
	}

	st := core.NewStepper(context.Background(), core.NewSession(fig.SrcDeps, fig.Source), fig.Set)
	defer st.Close()

	step, err := st.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if step.Choice == nil {
		t.Fatalf("first step: want a choice question, got %+v", step)
	}
	if len(step.Choice.Choices) != 2 {
		t.Fatalf("choice question has %d or-groups, want 2", len(step.Choice.Choices))
	}
	final := driveStepper(t, st, nil, sel)
	if final.Err != nil {
		t.Fatal(final.Err)
	}
	if got, want := formatSet(final.Result), formatSet(direct); got != want {
		t.Fatalf("stepper result differs:\n%s\nvs\n%s", got, want)
	}
}

// TestStepperInvalidAnswer checks a bad answer is rejected without
// advancing or killing the dialog.
func TestStepperInvalidAnswer(t *testing.T) {
	fig := scenarios.NewFigure1(true)
	st := core.NewStepper(context.Background(), core.NewSession(fig.SrcDeps, fig.Source), fig.Set)
	defer st.Close()

	before, err := st.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if before.Grouping == nil {
		t.Fatalf("want a grouping question first, got %+v", before)
	}
	if _, err := st.Answer(context.Background(), core.Answer{Scenario: 7}); !errors.Is(err, core.ErrInvalidAnswer) {
		t.Fatalf("Answer(7) err = %v, want ErrInvalidAnswer", err)
	}
	after, err := st.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if after.Seq != before.Seq || after.Grouping == nil {
		t.Fatal("invalid answer advanced the dialog")
	}
	// A valid answer still works.
	if _, err := st.Answer(context.Background(), core.Answer{Scenario: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestStepperClose checks Close unblocks the pipeline goroutine and
// the session reports a terminal error.
func TestStepperClose(t *testing.T) {
	fig := scenarios.NewFigure1(true)
	st := core.NewStepper(context.Background(), core.NewSession(fig.SrcDeps, fig.Source), fig.Set)
	if _, err := st.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	st.Close()
	deadline := time.Now().Add(5 * time.Second)
	for !st.Done() {
		if time.Now().After(deadline) {
			t.Fatal("pipeline goroutine did not exit after Close")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.Result().Err == nil {
		t.Fatal("closed mid-dialog session reports no terminal error")
	}
}
