package core_test

import (
	"testing"
	"time"

	"muse/internal/core"
	"muse/internal/designer"
	"muse/internal/mapping"
	"muse/internal/scenarios"
)

// slowDesigner simulates think time, giving the prefetcher room to
// finish.
type slowDesigner struct {
	inner core.GroupingDesigner
	delay time.Duration
}

func (s *slowDesigner) ChooseScenario(q *core.GroupingQuestion) (int, error) {
	time.Sleep(s.delay)
	return s.inner.ChooseScenario(q)
}

// TestPrefetchSameResult: the think-time prefetcher changes neither
// the inferred grouping function nor the question count nor which
// examples are real.
func TestPrefetchSameResult(t *testing.T) {
	run := func(prefetch bool) (*mapping.Mapping, core.SKStats) {
		f := scenarios.NewFigure1(false)
		f.Source.MustInsertVals("Companies", "113", "SBC", "Almaden")
		f.Source.MustInsertVals("Projects", "p3", "WiFi", "113", "e16")
		w := core.NewGroupingWizard(f.SrcDeps, f.Source)
		w.Prefetch = prefetch
		oracle := designer.NewGroupingOracle("SKProjects", []mapping.Expr{mapping.E("c", "cname")})
		d := &slowDesigner{inner: oracle, delay: 5 * time.Millisecond}
		out, err := w.DesignSK(f.M2, "SKProjects", d)
		if err != nil {
			t.Fatal(err)
		}
		return out, w.Stats.SKs[0]
	}
	plain, plainStats := run(false)
	pre, preStats := run(true)
	if plain.SKFor("SKProjects").SK.String() != pre.SKFor("SKProjects").SK.String() {
		t.Errorf("prefetch changed the result: %s vs %s",
			plain.SKFor("SKProjects").SK, pre.SKFor("SKProjects").SK)
	}
	if plainStats.Questions != preStats.Questions {
		t.Errorf("prefetch changed the question count: %d vs %d", plainStats.Questions, preStats.Questions)
	}
	if plainStats.RealExamples != preStats.RealExamples {
		t.Errorf("prefetch changed real-example usage: %d vs %d", plainStats.RealExamples, preStats.RealExamples)
	}
}

// TestPrefetchReducesWait: with generous think time, cached retrievals
// cost (almost) nothing at question time.
func TestPrefetchReducesWait(t *testing.T) {
	f := scenarios.NewFigure1(false)
	// Enough data that retrievals are measurable but quick.
	for i := 0; i < 50; i++ {
		cid := string(rune('A'+i%26)) + string(rune('A'+i/26))
		f.Source.MustInsertVals("Companies", cid, "IBM", "NY")
		f.Source.MustInsertVals("Projects", "px"+cid, "P"+cid, cid, "e14")
	}
	w := core.NewGroupingWizard(f.SrcDeps, f.Source)
	w.Prefetch = true
	oracle := designer.NewGroupingOracle("SKProjects", []mapping.Expr{mapping.E("c", "cname")})
	d := &slowDesigner{inner: oracle, delay: 20 * time.Millisecond}
	if _, err := w.DesignSK(f.M2, "SKProjects", d); err != nil {
		t.Fatal(err)
	}
	// Sanity only: the run completed, asked the full question sequence,
	// and recorded sensible (non-negative) example times.
	rec := w.Stats.SKs[0]
	if rec.Questions == 0 {
		t.Error("no questions asked")
	}
	if rec.ExampleTime < 0 {
		t.Error("negative example time")
	}
}
