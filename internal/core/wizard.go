package core

import (
	"time"

	"muse/internal/instance"
	"muse/internal/mapping"
	"muse/internal/rank"
)

// QuestionKind distinguishes the questions Muse-G can pose.
type QuestionKind int

const (
	// QuestionProbe is the ordinary Sec. III-A question: two scenarios
	// differing in whether the probed attribute joins the grouping.
	QuestionProbe QuestionKind = iota
	// QuestionKeyGrouping is the multi-key question of Sec. III-B:
	// "group by key (scenario 1) or by non-key attributes
	// (scenario 2)?"
	QuestionKeyGrouping
	// QuestionGroupMore is the incremental question: scenario 1 keeps
	// the probed attribute in the grouping, scenario 2 drops it.
	QuestionGroupMore
)

// GroupingQuestion is one question Muse-G poses: a small example
// source and two candidate target instances. The designer answers 1
// or 2.
type GroupingQuestion struct {
	Kind    QuestionKind
	Mapping *mapping.Mapping
	// SK names the grouping function under design.
	SK string
	// Probe is the attribute being probed (zero for QuestionKeyGrouping).
	Probe mapping.Expr
	// Confirmed lists the grouping attributes already confirmed.
	Confirmed []mapping.Expr
	// Source is the example instance Ie.
	Source *instance.Instance
	// Real reports whether Source was drawn from the actual instance.
	Real bool
	// Scenario1 includes the probed attribute (or, for the multi-key
	// question, groups by key); Scenario2 omits it.
	Scenario1, Scenario2 *instance.Instance
	// Include1 and Include2 are the grouping-argument lists behind the
	// two scenarios, for display.
	Include1, Include2 []mapping.Expr
	// Ranking, when the wizard has an evidence ranker attached, scores
	// the two scenarios against the real instance (option 1 is
	// Scenario1). It is advisory metadata: attaching a ranker never
	// changes which questions are posed, their order, or their content.
	Ranking *rank.Ranking
}

// GroupingDesigner answers Muse-G's questions: 1 selects Scenario1, 2
// selects Scenario2.
type GroupingDesigner interface {
	ChooseScenario(q *GroupingQuestion) (int, error)
}

// Choice is one ambiguous element of a Muse-D question with its
// candidate values (aligned with the or-group's alternatives).
type Choice struct {
	Element mapping.Expr
	Values  []instance.Value
}

// ChoiceQuestion is the single question Muse-D poses per ambiguous
// mapping: a source example and one partial target instance whose
// ambiguous elements carry choice lists.
type ChoiceQuestion struct {
	Mapping *mapping.Mapping
	Source  *instance.Instance
	Real    bool
	// Target is the partial target instance produced by chasing the
	// unambiguous part of the mapping; ambiguous slots hold nulls.
	Target *instance.Instance
	// Choices lists, per or-group, the candidate values.
	Choices []Choice
	// Rankings, when the wizard has an evidence ranker attached, holds
	// one ranking per or-group, aligned with Choices (option i scores
	// the i-th alternative). Advisory metadata only.
	Rankings []rank.Ranking
}

// DisambiguationDesigner fills in the choices: for each or-group, the
// indexes of the selected alternatives (at least one each; more than
// one selects multiple interpretations).
type DisambiguationDesigner interface {
	SelectValues(q *ChoiceQuestion) ([][]int, error)
}

// SKStats records Muse-G effort for one grouping function, feeding the
// Fig. 5 experiment columns.
type SKStats struct {
	Mapping string
	SK      string
	// PossSize is |poss(m, SK)|.
	PossSize int
	// Questions is the number of questions actually posed.
	Questions int
	// RealExamples / SyntheticExamples count how the posed questions'
	// sources were obtained.
	RealExamples      int
	SyntheticExamples int
	// ExampleTime is the total time spent constructing and retrieving
	// example instances.
	ExampleTime time.Duration
	// ChaseTime is the total time spent chasing the example into the
	// two scenarios of each question.
	ChaseTime time.Duration
	// ExampleTuples is the total tuple count across the obtained
	// example instances (real and synthetic).
	ExampleTuples int
	// Result is the designed grouping argument list.
	Result []mapping.Expr
}

// Stats aggregates per-SK records.
type Stats struct {
	SKs []SKStats
}

// TotalQuestions sums questions across all designed grouping
// functions.
func (s *Stats) TotalQuestions() int {
	n := 0
	for _, r := range s.SKs {
		n += r.Questions
	}
	return n
}

// AvgQuestions returns the mean number of questions per grouping
// function.
func (s *Stats) AvgQuestions() float64 {
	if len(s.SKs) == 0 {
		return 0
	}
	return float64(s.TotalQuestions()) / float64(len(s.SKs))
}

// AvgPoss returns the mean |poss(m, SK)|.
func (s *Stats) AvgPoss() float64 {
	if len(s.SKs) == 0 {
		return 0
	}
	n := 0
	for _, r := range s.SKs {
		n += r.PossSize
	}
	return float64(n) / float64(len(s.SKs))
}

// RealFraction returns the fraction of posed questions whose example
// was drawn from the real instance.
func (s *Stats) RealFraction() float64 {
	real, total := 0, 0
	for _, r := range s.SKs {
		real += r.RealExamples
		total += r.RealExamples + r.SyntheticExamples
	}
	if total == 0 {
		return 0
	}
	return float64(real) / float64(total)
}

// AvgExampleTime returns the mean example construction/retrieval time
// per question.
func (s *Stats) AvgExampleTime() time.Duration {
	total := time.Duration(0)
	n := 0
	for _, r := range s.SKs {
		total += r.ExampleTime
		n += r.RealExamples + r.SyntheticExamples
	}
	if n == 0 {
		return 0
	}
	return total / time.Duration(n)
}
