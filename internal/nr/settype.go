package nr

import (
	"fmt"
	"strings"
)

// SetType describes one nested set of a schema: its position, its
// element record's atomic attributes (flattened through intermediate
// records with dotted labels), its set-valued child fields, and its
// parent set (nil for a top-level set directly under the schema root).
//
// Mappings range variables over set types, and grouping functions are
// designed per set type, so SetType is the unit both wizards work in.
type SetType struct {
	Schema *Schema
	// Path names the set field from the schema root, e.g.
	// ["Orgs", "Projects"].
	Path Path
	// Name is the last label of Path ("Projects").
	Name string
	// Elem is the element type of the set (a record in the strictly
	// alternating fragment the paper's algorithms are stated for).
	Elem *Type
	// Atoms lists the atomic attribute labels of Elem, flattened
	// through nested records ("address.city"). Order follows the
	// schema declaration.
	Atoms []string
	// SetFields lists the labels of Elem's set-valued fields, i.e. the
	// child nested sets. Order follows the schema declaration.
	SetFields []string
	// Parent is the enclosing set type, nil for top-level sets.
	Parent *SetType
	// Depth is 0 for top-level sets, Parent.Depth+1 otherwise.
	Depth int
	// skName is the unique SetID (Skolem function) name, assigned by
	// the catalog.
	skName string
	// children maps set-field labels to the child set types, assigned
	// by the catalog.
	children map[string]*SetType
	// slots maps every atom and set-field label to its position in a
	// tuple's value array, assigned by the catalog (see Slot).
	slots map[string]int
}

// NumSlots returns the number of value slots of the element record:
// the atoms followed by the set fields.
func (st *SetType) NumSlots() int { return len(st.Atoms) + len(st.SetFields) }

// Slot returns the value-array position of an atom or set-field label,
// or -1 when the label names neither. The layout is fixed: atoms
// occupy slots [0, len(Atoms)) in declaration order and set fields
// follow in declaration order — instance.Tuple stores its values in
// exactly this order, and slot-addressed access (instance.Tuple's
// PutSlot) depends on it.
func (st *SetType) Slot(label string) int {
	if i, ok := st.slots[label]; ok {
		return i
	}
	return -1
}

// Child returns the child set type reached through the given set-field
// label (possibly dotted, matching SetFields), or nil. It is the
// allocation-free equivalent of resolving Path + label through the
// catalog.
func (st *SetType) Child(field string) *SetType { return st.children[field] }

// SKName returns the SetID / Skolem function name of the set, e.g.
// "SKProjects". Names are unique within a schema: when two sets share
// a final label the full path is embedded ("SKOrgs_Projects").
func (st *SetType) SKName() string { return st.skName }

// String renders the set type as "Schema.Path".
func (st *SetType) String() string {
	return st.Schema.Name + "." + st.Path.String()
}

// HasAtom reports whether label names an atomic attribute of the set's
// element record.
func (st *SetType) HasAtom(label string) bool {
	for _, a := range st.Atoms {
		if a == label {
			return true
		}
	}
	return false
}

// HasSetField reports whether label names a set-valued field of the
// set's element record.
func (st *SetType) HasSetField(label string) bool {
	for _, f := range st.SetFields {
		if f == label {
			return true
		}
	}
	return false
}

// Catalog indexes all set types of a schema.
type Catalog struct {
	Schema *Schema
	// Sets lists all set types in breadth-first order from the root
	// (the probe order Muse-G Step 1 uses on the target schema).
	Sets   []*SetType
	byPath map[string]*SetType
}

// NewCatalog walks the schema and builds its set-type catalog. It
// returns an error if the schema strays outside the fragment the Muse
// algorithms operate on (set elements must be records, possibly with
// nested records; choice types may appear only below atomic use).
func NewCatalog(s *Schema) (*Catalog, error) {
	c := &Catalog{Schema: s, byPath: make(map[string]*SetType)}
	// Collect breadth-first: top-level sets first, then their children.
	type workItem struct {
		parent *SetType
		prefix Path
		rec    *Type
	}
	queue := []workItem{{parent: nil, prefix: nil, rec: s.Root}}
	for len(queue) > 0 {
		item := queue[0]
		queue = queue[1:]
		var sets []*SetType
		if err := collectSets(s, item.rec, item.prefix, item.parent, &sets); err != nil {
			return nil, err
		}
		for _, st := range sets {
			c.Sets = append(c.Sets, st)
			c.byPath[st.Path.String()] = st
			queue = append(queue, workItem{parent: st, prefix: st.Path, rec: st.Elem})
		}
	}
	c.assignSKNames()
	for _, st := range c.Sets {
		st.slots = make(map[string]int, st.NumSlots())
		for i, a := range st.Atoms {
			st.slots[a] = i
		}
		for i, f := range st.SetFields {
			st.slots[f] = len(st.Atoms) + i
		}
	}
	for _, st := range c.Sets {
		if st.Parent == nil {
			continue
		}
		if st.Parent.children == nil {
			st.Parent.children = make(map[string]*SetType)
		}
		st.Parent.children[strings.Join(st.Path[len(st.Parent.Path):], ".")] = st
	}
	return c, nil
}

// MustCatalog is NewCatalog, panicking on error.
func MustCatalog(s *Schema) *Catalog {
	c, err := NewCatalog(s)
	if err != nil {
		panic(err)
	}
	return c
}

// collectSets finds the set fields directly reachable from rec without
// passing through another set, flattening intermediate records.
func collectSets(s *Schema, rec *Type, prefix Path, parent *SetType, out *[]*SetType) error {
	if rec.Kind != KindRecord {
		if rec.Kind == KindChoice {
			// Choice of records: collect from every branch; labels are
			// prefixed by the branch label via the recursive call below.
			for _, f := range rec.Fields {
				if f.Type.Kind == KindRecord || f.Type.Kind == KindChoice {
					if err := collectSets(s, f.Type, append(prefix.Clone(), f.Label), parent, out); err != nil {
						return err
					}
				}
			}
			return nil
		}
		return nil
	}
	for _, f := range rec.Fields {
		switch f.Type.Kind {
		case KindSet:
			elem := f.Type.Elem
			for elem.Kind == KindSet {
				// SetOf SetOf t: insert an implicit record is out of
				// scope; reject to keep SetIDs well defined.
				return fmt.Errorf("nr: schema %s: set of set at %q is not supported", s.Name, append(prefix.Clone(), f.Label))
			}
			st := &SetType{
				Schema: s,
				Path:   append(prefix.Clone(), f.Label),
				Name:   f.Label,
				Elem:   elem,
				Parent: parent,
			}
			if parent != nil {
				st.Depth = parent.Depth + 1
			}
			if elem.Kind == KindRecord || elem.Kind == KindChoice {
				flattenAtoms(elem, nil, &st.Atoms, &st.SetFields)
			} else {
				// SetOf String/Int: model as a single implicit atom.
				st.Atoms = []string{"value"}
			}
			*out = append(*out, st)
		case KindRecord, KindChoice:
			if err := collectSets(s, f.Type, append(prefix.Clone(), f.Label), parent, out); err != nil {
				return err
			}
		}
	}
	return nil
}

// flattenAtoms walks a record/choice collecting dotted atomic labels
// and direct set-field labels.
func flattenAtoms(rec *Type, prefix []string, atoms *[]string, setFields *[]string) {
	for _, f := range rec.Fields {
		label := strings.Join(append(append([]string{}, prefix...), f.Label), ".")
		switch f.Type.Kind {
		case KindString, KindInt:
			*atoms = append(*atoms, label)
		case KindSet:
			*setFields = append(*setFields, label)
		case KindRecord, KindChoice:
			flattenAtoms(f.Type, append(append([]string{}, prefix...), f.Label), atoms, setFields)
		}
	}
}

// assignSKNames gives every set a unique Skolem-function name: "SK" +
// final label when that is unique, otherwise "SK" + path joined by "_".
func (c *Catalog) assignSKNames() {
	count := make(map[string]int)
	for _, st := range c.Sets {
		count[st.Name]++
	}
	for _, st := range c.Sets {
		if count[st.Name] == 1 {
			st.skName = "SK" + st.Name
		} else {
			st.skName = "SK" + strings.Join(st.Path, "_")
		}
	}
}

// ByPath returns the set type with the given path, or nil.
func (c *Catalog) ByPath(p Path) *SetType { return c.byPath[p.String()] }

// ByName returns the unique set type whose final label is name. It
// returns an error when the name is absent or ambiguous.
func (c *Catalog) ByName(name string) (*SetType, error) {
	var found *SetType
	for _, st := range c.Sets {
		if st.Name == name {
			if found != nil {
				return nil, fmt.Errorf("nr: schema %s: set name %q is ambiguous (%s and %s)", c.Schema.Name, name, found.Path, st.Path)
			}
			found = st
		}
	}
	if found == nil {
		return nil, fmt.Errorf("nr: schema %s: no set named %q", c.Schema.Name, name)
	}
	return found, nil
}

// BySKName returns the set type whose Skolem name matches, or nil.
func (c *Catalog) BySKName(sk string) *SetType {
	for _, st := range c.Sets {
		if st.skName == sk {
			return st
		}
	}
	return nil
}

// TopLevel returns the top-level set types in declaration order.
func (c *Catalog) TopLevel() []*SetType {
	var out []*SetType
	for _, st := range c.Sets {
		if st.Parent == nil {
			out = append(out, st)
		}
	}
	return out
}

// Children returns the child set types of st in declaration order.
func (c *Catalog) Children(st *SetType) []*SetType {
	var out []*SetType
	for _, child := range c.Sets {
		if child.Parent == st {
			out = append(out, child)
		}
	}
	return out
}
