package nr

import (
	"strings"
	"testing"
	"testing/quick"
)

// compDB builds the source schema of Fig. 1.
func compDB() *Schema {
	return MustSchema("CompDB", Record(
		F("Companies", SetOf(Record(
			F("cid", IntType()),
			F("cname", StringType()),
			F("location", StringType()),
		))),
		F("Projects", SetOf(Record(
			F("pid", IntType()),
			F("pname", StringType()),
			F("cid", IntType()),
			F("manager", IntType()),
		))),
		F("Employees", SetOf(Record(
			F("eid", IntType()),
			F("ename", StringType()),
			F("contact", StringType()),
		))),
	))
}

// orgDB builds the target schema of Fig. 1.
func orgDB() *Schema {
	return MustSchema("OrgDB", Record(
		F("Orgs", SetOf(Record(
			F("oname", StringType()),
			F("Projects", SetOf(Record(
				F("pname", StringType()),
				F("manager", IntType()),
			))),
		))),
		F("Employees", SetOf(Record(
			F("eid", IntType()),
			F("ename", StringType()),
		))),
	))
}

func TestTypeString(t *testing.T) {
	ty := Record(F("cid", IntType()), F("tags", SetOf(StringType())))
	got := ty.String()
	want := "Rcd[cid: Int, tags: SetOf String]"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestTypeEqual(t *testing.T) {
	a := Record(F("x", IntType()), F("y", SetOf(Record(F("z", StringType())))))
	b := Record(F("x", IntType()), F("y", SetOf(Record(F("z", StringType())))))
	if !Equal(a, b) {
		t.Error("structurally identical types reported unequal")
	}
	c := Record(F("x", IntType()), F("y", SetOf(Record(F("z", IntType())))))
	if Equal(a, c) {
		t.Error("types differing at a leaf reported equal")
	}
	d := Record(F("x", IntType()))
	if Equal(a, d) {
		t.Error("types with different field counts reported equal")
	}
	if Equal(nil, a) || Equal(a, nil) {
		t.Error("nil type reported equal to non-nil")
	}
	if !Equal(nil, nil) == false && Equal(nil, nil) {
		// Equal(nil, nil) is true via pointer equality; that is fine.
		_ = d
	}
}

func TestChoiceString(t *testing.T) {
	ty := Choice(F("phone", StringType()), F("email", StringType()))
	if got := ty.String(); got != "Choice[phone: String, email: String]" {
		t.Errorf("Choice String() = %q", got)
	}
}

func TestSchemaValidation(t *testing.T) {
	cases := []struct {
		name    string
		root    *Type
		wantErr string
	}{
		{"nil root", nil, "nil root"},
		{"non-record root", SetOf(Record()), "must be a record"},
		{"empty label", Record(F("", IntType())), "empty field label"},
		{"duplicate label", Record(F("a", IntType()), F("a", IntType())), "duplicate field label"},
		{"dotted label", Record(F("a.b", IntType())), "reserved characters"},
		{"nil field type", Record(Field{Label: "a"}), "nil type"},
		{"nil set elem", Record(F("a", &Type{Kind: KindSet})), "nil element"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewSchema("S", tc.root)
			if err == nil {
				t.Fatalf("NewSchema accepted invalid schema")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
	if _, err := NewSchema("", Record()); err == nil {
		t.Error("NewSchema accepted empty schema name")
	}
	if _, err := NewSchema("OK", Record(F("a", IntType()))); err != nil {
		t.Errorf("NewSchema rejected valid schema: %v", err)
	}
}

func TestResolve(t *testing.T) {
	s := orgDB()
	// Resolving a top-level set yields the set type.
	ty, err := s.Resolve(ParsePath("Orgs"))
	if err != nil {
		t.Fatal(err)
	}
	if ty.Kind != KindSet {
		t.Errorf("Orgs resolved to %s, want SetOf", ty.Kind)
	}
	// Resolving through a set descends into its element record.
	ty, err = s.Resolve(ParsePath("Orgs.Projects.pname"))
	if err != nil {
		t.Fatal(err)
	}
	if ty.Kind != KindString {
		t.Errorf("Orgs.Projects.pname resolved to %s, want String", ty.Kind)
	}
	if _, err := s.Resolve(ParsePath("Orgs.nosuch")); err == nil {
		t.Error("Resolve accepted a bogus label")
	}
	if _, err := s.Resolve(ParsePath("Orgs.oname.deeper")); err == nil {
		t.Error("Resolve descended into an atomic type")
	}
	// Empty path resolves to the root itself.
	ty, err = s.Resolve(nil)
	if err != nil || ty != s.Root {
		t.Errorf("Resolve(nil) = %v, %v; want root", ty, err)
	}
}

func TestCatalogBreadthFirst(t *testing.T) {
	c := MustCatalog(orgDB())
	var order []string
	for _, st := range c.Sets {
		order = append(order, st.Path.String())
	}
	want := []string{"Orgs", "Employees", "Orgs.Projects"}
	if len(order) != len(want) {
		t.Fatalf("catalog has sets %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("catalog order %v, want %v (BFS from root)", order, want)
		}
	}
}

func TestCatalogStructure(t *testing.T) {
	c := MustCatalog(orgDB())
	projs := c.ByPath(ParsePath("Orgs.Projects"))
	if projs == nil {
		t.Fatal("Orgs.Projects missing from catalog")
	}
	if projs.Parent == nil || projs.Parent.Name != "Orgs" {
		t.Errorf("Orgs.Projects parent = %v, want Orgs", projs.Parent)
	}
	if projs.Depth != 1 {
		t.Errorf("Orgs.Projects depth = %d, want 1", projs.Depth)
	}
	if got := strings.Join(projs.Atoms, ","); got != "pname,manager" {
		t.Errorf("Orgs.Projects atoms = %s", got)
	}
	orgs := c.ByPath(ParsePath("Orgs"))
	if got := strings.Join(orgs.SetFields, ","); got != "Projects" {
		t.Errorf("Orgs set fields = %s", got)
	}
	if len(c.TopLevel()) != 2 {
		t.Errorf("top level sets = %d, want 2", len(c.TopLevel()))
	}
	if kids := c.Children(orgs); len(kids) != 1 || kids[0] != projs {
		t.Errorf("Children(Orgs) = %v", kids)
	}
	if !projs.HasAtom("pname") || projs.HasAtom("Projects") {
		t.Error("HasAtom misclassifies labels")
	}
	if !orgs.HasSetField("Projects") || orgs.HasSetField("oname") {
		t.Error("HasSetField misclassifies labels")
	}
}

func TestSKNamesUnique(t *testing.T) {
	// Both CompDB.Projects and OrgDB has Projects nested under Orgs —
	// within one schema, two sets named Projects must get
	// path-qualified SK names.
	s := MustSchema("S", Record(
		F("A", SetOf(Record(
			F("x", IntType()),
			F("Items", SetOf(Record(F("v", IntType())))),
		))),
		F("B", SetOf(Record(
			F("y", IntType()),
			F("Items", SetOf(Record(F("w", IntType())))),
		))),
	))
	c := MustCatalog(s)
	names := make(map[string]bool)
	for _, st := range c.Sets {
		if names[st.SKName()] {
			t.Fatalf("duplicate SK name %q", st.SKName())
		}
		names[st.SKName()] = true
	}
	a := c.ByPath(ParsePath("A.Items"))
	if a.SKName() != "SKA_Items" {
		t.Errorf("A.Items SK name = %q, want SKA_Items", a.SKName())
	}
	top := c.ByPath(ParsePath("A"))
	if top.SKName() != "SKA" {
		t.Errorf("A SK name = %q, want SKA", top.SKName())
	}
	if c.BySKName("SKA") != top {
		t.Error("BySKName(SKA) did not return A")
	}
	if c.BySKName("SKZ") != nil {
		t.Error("BySKName returned a set for an unknown name")
	}
}

func TestCatalogByName(t *testing.T) {
	c := MustCatalog(orgDB())
	st, err := c.ByName("Projects")
	if err != nil || st.Path.String() != "Orgs.Projects" {
		t.Errorf("ByName(Projects) = %v, %v", st, err)
	}
	if _, err := c.ByName("Nope"); err == nil {
		t.Error("ByName accepted unknown set name")
	}
	amb := MustSchema("S", Record(
		F("A", SetOf(Record(F("Items", SetOf(Record(F("v", IntType()))))))),
		F("B", SetOf(Record(F("Items", SetOf(Record(F("v", IntType()))))))),
	))
	if _, err := MustCatalog(amb).ByName("Items"); err == nil {
		t.Error("ByName accepted ambiguous set name")
	}
}

func TestFlattenedRecordAtoms(t *testing.T) {
	s := MustSchema("S", Record(
		F("People", SetOf(Record(
			F("name", StringType()),
			F("address", Record(
				F("city", StringType()),
				F("zip", IntType()),
			)),
			F("Phones", SetOf(Record(F("num", StringType())))),
		))),
	))
	c := MustCatalog(s)
	people := c.ByPath(ParsePath("People"))
	if got := strings.Join(people.Atoms, ","); got != "name,address.city,address.zip" {
		t.Errorf("flattened atoms = %s", got)
	}
	if got := strings.Join(people.SetFields, ","); got != "Phones" {
		t.Errorf("set fields = %s", got)
	}
}

func TestSetOfAtomGetsImplicitValueAtom(t *testing.T) {
	s := MustSchema("S", Record(F("Tags", SetOf(StringType()))))
	c := MustCatalog(s)
	tags := c.ByPath(ParsePath("Tags"))
	if len(tags.Atoms) != 1 || tags.Atoms[0] != "value" {
		t.Errorf("SetOf String atoms = %v, want [value]", tags.Atoms)
	}
}

func TestSetOfSetRejected(t *testing.T) {
	s := &Schema{Name: "S", Root: Record(F("M", SetOf(SetOf(Record(F("v", IntType()))))))}
	if _, err := NewCatalog(s); err == nil {
		t.Error("catalog accepted set-of-set schema")
	}
}

func TestChoiceBranchesContributeSets(t *testing.T) {
	s := MustSchema("S", Record(
		F("contact", Choice(
			F("personal", Record(F("Emails", SetOf(Record(F("addr", StringType())))))),
			F("work", Record(F("Lines", SetOf(Record(F("num", IntType())))))),
		)),
	))
	c := MustCatalog(s)
	if len(c.Sets) != 2 {
		t.Fatalf("choice schema yielded %d sets, want 2", len(c.Sets))
	}
	if c.ByPath(ParsePath("contact.personal.Emails")) == nil {
		t.Error("missing set under first choice branch")
	}
	if c.ByPath(ParsePath("contact.work.Lines")) == nil {
		t.Error("missing set under second choice branch")
	}
}

func TestPathHelpers(t *testing.T) {
	p := ParsePath("a.b.c")
	if p.String() != "a.b.c" || len(p) != 3 {
		t.Errorf("ParsePath round-trip failed: %v", p)
	}
	if ParsePath("") != nil {
		t.Error("ParsePath(\"\") should be nil")
	}
	q := p.Clone()
	q[0] = "z"
	if p[0] != "a" {
		t.Error("Clone aliases the original")
	}
	if !p.Equal(ParsePath("a.b.c")) || p.Equal(q) || p.Equal(ParsePath("a.b")) {
		t.Error("Path.Equal misbehaves")
	}
}

// TestPathEqualReflexiveQuick property-tests that parse/print/Equal are
// consistent for arbitrary label lists.
func TestPathEqualReflexiveQuick(t *testing.T) {
	f := func(labels []string) bool {
		// Build a path from sanitized labels (no dots, non-empty).
		var p Path
		for _, l := range labels {
			l = strings.Map(func(r rune) rune {
				if r == '.' || r == ' ' {
					return 'x'
				}
				return r
			}, l)
			if l == "" {
				l = "x"
			}
			p = append(p, l)
		}
		return p.Equal(p.Clone()) && ParsePath(p.String()).Equal(p) || len(p) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFieldLookup(t *testing.T) {
	rec := Record(F("a", IntType()), F("b", StringType()))
	if f, ok := rec.Field("b"); !ok || f.Type.Kind != KindString {
		t.Error("Field lookup failed")
	}
	if _, ok := rec.Field("z"); ok {
		t.Error("Field lookup found a ghost field")
	}
	if _, ok := IntType().Field("a"); ok {
		t.Error("Field lookup on atomic type should fail")
	}
}

func TestIsAtomic(t *testing.T) {
	if !StringType().IsAtomic() || !IntType().IsAtomic() {
		t.Error("atomic types not reported atomic")
	}
	if Record().IsAtomic() || SetOf(IntType()).IsAtomic() {
		t.Error("composite types reported atomic")
	}
}

func TestCompDBCatalog(t *testing.T) {
	c := MustCatalog(compDB())
	if len(c.Sets) != 3 {
		t.Fatalf("CompDB has %d sets, want 3", len(c.Sets))
	}
	companies := c.ByPath(ParsePath("Companies"))
	if got := strings.Join(companies.Atoms, ","); got != "cid,cname,location" {
		t.Errorf("Companies atoms = %s", got)
	}
	if companies.Depth != 0 || companies.Parent != nil {
		t.Error("Companies should be top-level")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindString: "String", KindInt: "Int", KindRecord: "Rcd",
		KindSet: "SetOf", KindChoice: "Choice", Kind(99): "Kind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
