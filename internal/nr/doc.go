// Package nr implements the nested relational (NR) data model of
// Popa et al. (VLDB 2002) used by Muse: schemas are rooted trees of
// record, set, and choice types over the atomic types String and Int.
//
// A schema is a named root record; set-valued fields nested anywhere
// below the root model repeatable elements (relations, XML element
// collections). The package provides type construction, schema
// validation, path resolution, and a catalog of the schema's set types
// (the "nested sets" that mappings range over and that grouping
// functions are designed for).
package nr
