package nr

import (
	"fmt"
	"strings"
)

// Kind discriminates the NR type constructors.
type Kind int

const (
	// KindString is the atomic string type.
	KindString Kind = iota
	// KindInt is the atomic integer type.
	KindInt
	// KindRecord is the record constructor Rcd[l1:t1, ..., ln:tn].
	KindRecord
	// KindSet is the set constructor SetOf t.
	KindSet
	// KindChoice is the variant constructor Choice[l1:t1, ..., ln:tn].
	KindChoice
)

// String returns the constructor name as written in the paper.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "String"
	case KindInt:
		return "Int"
	case KindRecord:
		return "Rcd"
	case KindSet:
		return "SetOf"
	case KindChoice:
		return "Choice"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Type is an NR type. Exactly one of the composite slots is used
// depending on Kind: Fields for records and choices, Elem for sets.
// Atomic types carry neither. Types are immutable after construction;
// share them freely.
type Type struct {
	Kind   Kind
	Fields []Field // KindRecord, KindChoice
	Elem   *Type   // KindSet
}

// Field is a labeled component of a record or choice type.
type Field struct {
	Label string
	Type  *Type
}

var (
	stringType = &Type{Kind: KindString}
	intType    = &Type{Kind: KindInt}
)

// StringType returns the shared atomic String type.
func StringType() *Type { return stringType }

// IntType returns the shared atomic Int type.
func IntType() *Type { return intType }

// Record constructs a record type from the given fields.
func Record(fields ...Field) *Type {
	return &Type{Kind: KindRecord, Fields: fields}
}

// SetOf constructs a set type with the given element type.
func SetOf(elem *Type) *Type {
	return &Type{Kind: KindSet, Elem: elem}
}

// Choice constructs a choice (variant) type from the given fields.
func Choice(fields ...Field) *Type {
	return &Type{Kind: KindChoice, Fields: fields}
}

// F is shorthand for constructing a Field.
func F(label string, t *Type) Field { return Field{Label: label, Type: t} }

// IsAtomic reports whether t is one of the atomic types.
func (t *Type) IsAtomic() bool {
	return t.Kind == KindString || t.Kind == KindInt
}

// Field returns the field with the given label and true, or a zero
// Field and false if t is not a record/choice or has no such field.
func (t *Type) Field(label string) (Field, bool) {
	if t.Kind != KindRecord && t.Kind != KindChoice {
		return Field{}, false
	}
	for _, f := range t.Fields {
		if f.Label == label {
			return f, true
		}
	}
	return Field{}, false
}

// String renders the type using the paper's grammar, e.g.
// "Rcd[cid: Int, cname: String]".
func (t *Type) String() string {
	var b strings.Builder
	t.write(&b)
	return b.String()
}

func (t *Type) write(b *strings.Builder) {
	switch t.Kind {
	case KindString, KindInt:
		b.WriteString(t.Kind.String())
	case KindSet:
		b.WriteString("SetOf ")
		t.Elem.write(b)
	case KindRecord, KindChoice:
		b.WriteString(t.Kind.String())
		b.WriteByte('[')
		for i, f := range t.Fields {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(f.Label)
			b.WriteString(": ")
			f.Type.write(b)
		}
		b.WriteByte(']')
	}
}

// Equal reports structural equality of two types.
func Equal(a, b *Type) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KindString, KindInt:
		return true
	case KindSet:
		return Equal(a.Elem, b.Elem)
	case KindRecord, KindChoice:
		if len(a.Fields) != len(b.Fields) {
			return false
		}
		for i := range a.Fields {
			if a.Fields[i].Label != b.Fields[i].Label || !Equal(a.Fields[i].Type, b.Fields[i].Type) {
				return false
			}
		}
		return true
	}
	return false
}
