package nr

import (
	"fmt"
	"strings"
)

// Path is a sequence of field labels descending from a schema root
// record. Traversal through a set field implicitly descends into the
// set's element type (set elements are unlabeled in the NR model), so
// a path such as ["Orgs", "Projects"] names the Projects set nested
// inside an Org element of the top-level Orgs set.
type Path []string

// String renders the path dotted, e.g. "Orgs.Projects".
func (p Path) String() string { return strings.Join(p, ".") }

// Equal reports whether two paths are identical.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of p.
func (p Path) Clone() Path {
	q := make(Path, len(p))
	copy(q, p)
	return q
}

// ParsePath splits a dotted path string.
func ParsePath(s string) Path {
	if s == "" {
		return nil
	}
	return Path(strings.Split(s, "."))
}

// Schema is an NR schema: a named root record whose fields are the
// schema roots. Following the paper we assume a single root of record
// type (XML documents are modeled this way too).
type Schema struct {
	Name string
	Root *Type
}

// NewSchema constructs a schema and validates it, returning an error
// describing the first problem found.
func NewSchema(name string, root *Type) (*Schema, error) {
	s := &Schema{Name: name, Root: root}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// MustSchema is NewSchema, panicking on error. Intended for tests and
// statically known schemas.
func MustSchema(name string, root *Type) *Schema {
	s, err := NewSchema(name, root)
	if err != nil {
		panic(err)
	}
	return s
}

// Validate checks the structural well-formedness rules: the root is a
// record, labels are non-empty and unique within each record/choice,
// set element types are non-nil, and no type node is nil.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("nr: schema has empty name")
	}
	if s.Root == nil {
		return fmt.Errorf("nr: schema %s has nil root", s.Name)
	}
	if s.Root.Kind != KindRecord {
		return fmt.Errorf("nr: schema %s root must be a record, got %s", s.Name, s.Root.Kind)
	}
	return validateType(s.Name, s.Root, nil)
}

func validateType(schema string, t *Type, at Path) error {
	if t == nil {
		return fmt.Errorf("nr: schema %s: nil type at %q", schema, at)
	}
	switch t.Kind {
	case KindString, KindInt:
		return nil
	case KindSet:
		if t.Elem == nil {
			return fmt.Errorf("nr: schema %s: set at %q has nil element type", schema, at)
		}
		return validateType(schema, t.Elem, at)
	case KindRecord, KindChoice:
		seen := make(map[string]bool, len(t.Fields))
		for _, f := range t.Fields {
			if f.Label == "" {
				return fmt.Errorf("nr: schema %s: empty field label at %q", schema, at)
			}
			if strings.ContainsAny(f.Label, ". \t\n") {
				return fmt.Errorf("nr: schema %s: field label %q at %q contains reserved characters", schema, f.Label, at)
			}
			if seen[f.Label] {
				return fmt.Errorf("nr: schema %s: duplicate field label %q at %q", schema, f.Label, at)
			}
			seen[f.Label] = true
			if err := validateType(schema, f.Type, append(at, f.Label)); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("nr: schema %s: unknown kind %d at %q", schema, int(t.Kind), at)
	}
}

// Resolve walks the path from the schema root and returns the type it
// names. Set types are traversed transparently: a label following a
// set field is looked up in the set's element record. The returned
// type is the type of the final field itself (so resolving
// ["Companies"] yields the SetOf type, not its element).
func (s *Schema) Resolve(p Path) (*Type, error) {
	t := s.Root
	for i, label := range p {
		// Descend through sets to their element records.
		for t.Kind == KindSet {
			t = t.Elem
		}
		if t.Kind != KindRecord && t.Kind != KindChoice {
			return nil, fmt.Errorf("nr: schema %s: path %q: %q is not addressable inside an atomic type", s.Name, p, label)
		}
		f, ok := t.Field(label)
		if !ok {
			return nil, fmt.Errorf("nr: schema %s: path %q: no field %q at %q", s.Name, p, label, Path(p[:i]))
		}
		t = f.Type
	}
	return t, nil
}

// MustResolve is Resolve, panicking on error.
func (s *Schema) MustResolve(p Path) *Type {
	t, err := s.Resolve(p)
	if err != nil {
		panic(err)
	}
	return t
}
