// Command musestat is a terminal console for a running musesrv: it
// polls GET /metrics and renders live RED stats — live sessions,
// steps/s, error rate, windowed p50/p95/p99 step latency, and the
// busiest scenarios — refreshing in place every -interval.
//
// Usage:
//
//	musestat [-url http://127.0.0.1:8080/metrics] [-interval 2s]
//	         [-top 5] [-once] [-no-clear]
//
// -once scrapes a single snapshot, prints it without clearing the
// screen, and exits — quantiles and rates are then cumulative since
// server start. That mode is what CI smoke tests drive.
//
// The quantiles come from the same bucket interpolation the server
// uses (internal/obs), so the numbers here match what museload and the
// server's own reports would say for the same traffic.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"muse/internal/obs"
)

// sample is one scrape of /metrics, timestamped so consecutive samples
// yield windowed rates and quantiles.
type sample struct {
	at      time.Time
	hists   map[string]*obs.PromHist
	scalars map[string]float64
}

func main() {
	log.SetFlags(0)
	url := flag.String("url", "http://127.0.0.1:8080/metrics", "metrics endpoint to poll")
	interval := flag.Duration("interval", 2*time.Second, "refresh period")
	top := flag.Int("top", 5, "scenarios to show")
	once := flag.Bool("once", false, "print one snapshot and exit (for CI)")
	noClear := flag.Bool("no-clear", false, "append refreshes instead of redrawing in place")
	flag.Parse()

	client := &http.Client{Timeout: 10 * time.Second}
	cur, err := scrape(client, *url)
	if err != nil {
		log.Fatalf("musestat: %v", err)
	}
	if *once {
		render(os.Stdout, *url, cur, nil, *top)
		return
	}
	prev := cur
	for {
		if !*noClear {
			fmt.Print("\033[H\033[2J")
		}
		render(os.Stdout, *url, cur, prev, *top)
		time.Sleep(*interval)
		next, err := scrape(client, *url)
		if err != nil {
			log.Printf("musestat: scrape: %v (retrying)", err)
			continue
		}
		prev, cur = cur, next
	}
}

func scrape(client *http.Client, url string) (*sample, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	hists, scalars, err := obs.ParsePromText(resp.Body)
	if err != nil {
		return nil, err
	}
	return &sample{at: time.Now(), hists: hists, scalars: scalars}, nil
}

// render writes one console frame. prev == cur means the first live
// frame (zero window, cumulative numbers); prev == nil means -once
// (cumulative, no rates).
func render(w io.Writer, url string, cur, prev *sample, top int) {
	window := 0.0
	windowed := prev != nil && prev != cur
	if windowed {
		window = cur.at.Sub(prev.at).Seconds()
	}
	mode := "cumulative"
	if windowed && window > 0 {
		mode = fmt.Sprintf("window %.1fs", window)
	}
	fmt.Fprintf(w, "musestat  %s  %s  (%s)\n\n", url, cur.at.Format("15:04:05"), mode)

	g := func(name string) float64 { return cur.scalars[name] }
	delta := func(name string) float64 {
		if windowed {
			return cur.scalars[name] - prev.scalars[name]
		}
		return cur.scalars[name]
	}
	rate := func(name string) string {
		if !windowed || window <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f/s", delta(name)/window)
	}

	fmt.Fprintf(w, "sessions  live %.0f   started %.0f   finished %.0f   evicted %.0f   rejected %.0f\n",
		g(obs.GSrvSessionsLive), g(obs.MSrvSessionsStarted), g(obs.MSrvSessionsFinished),
		g(obs.MSrvSessionsEvicted), g(obs.MSrvSessionsRejected))

	reqs, errs := delta(obs.MSrvRequests), delta(obs.MSrvErrors)
	errPct := 0.0
	if reqs > 0 {
		errPct = 100 * errs / reqs
	}
	fmt.Fprintf(w, "requests  %.0f total   %s   errors %.0f (%.1f%%)\n",
		g(obs.MSrvRequests), rate(obs.MSrvRequests), errs, errPct)

	// Step latency: a windowed histogram when we have two scrapes with
	// observations between them, else the cumulative distribution.
	h := cur.hists[obs.HSrvStepSeconds]
	steps, stepRate := 0.0, "-"
	if h != nil {
		steps = float64(h.Count)
		if windowed {
			win := h.Sub(prev.hists[obs.HSrvStepSeconds])
			if win.Count > 0 {
				h = win
			}
			if window > 0 {
				stepRate = fmt.Sprintf("%.1f/s", float64(win.Count)/window)
			}
		}
	}
	fmt.Fprintf(w, "steps     %.0f total   %s   slow captured %.0f\n",
		steps, stepRate, g(obs.MSrvSlowSteps))
	if h != nil && h.Count > 0 {
		fmt.Fprintf(w, "latency   p50 %s   p95 %s   p99 %s   (n=%d)\n",
			fmtSeconds(h.Quantile(0.50)), fmtSeconds(h.Quantile(0.95)), fmtSeconds(h.Quantile(0.99)), h.Count)
	} else {
		fmt.Fprintf(w, "latency   (no steps yet)\n")
	}

	if rows := topScenarios(cur, prev, top); len(rows) > 0 {
		fmt.Fprintf(w, "scenarios ")
		for i, sc := range rows {
			if i > 0 {
				fmt.Fprint(w, "   ")
			}
			fmt.Fprintf(w, "%s %.0f", sc.name, sc.total)
			if windowed && window > 0 {
				fmt.Fprintf(w, " (%.1f/s)", sc.delta/window)
			}
		}
		fmt.Fprintln(w)
	}
}

type scenarioRow struct {
	name  string
	total float64 // cumulative steps
	delta float64 // steps this window (== total when cumulative)
}

// topScenarios extracts the per-scenario step counters
// (muse_server_scenario_steps_total{scenario="…"}) and ranks them by
// windowed activity, cumulative count breaking ties.
func topScenarios(cur, prev *sample, top int) []scenarioRow {
	prefix := obs.MSrvScenarioSteps + `{scenario="`
	var rows []scenarioRow
	for name, val := range cur.scalars {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		sc := strings.TrimSuffix(strings.TrimPrefix(name, prefix), `"}`)
		d := val
		if prev != nil && prev != cur {
			d = val - prev.scalars[name]
		}
		rows = append(rows, scenarioRow{name: sc, total: val, delta: d})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].delta != rows[j].delta {
			return rows[i].delta > rows[j].delta
		}
		if rows[i].total != rows[j].total {
			return rows[i].total > rows[j].total
		}
		return rows[i].name < rows[j].name
	})
	if top > 0 && len(rows) > top {
		rows = rows[:top]
	}
	return rows
}

// fmtSeconds renders a latency with a unit sized to its magnitude.
func fmtSeconds(s float64) string {
	switch {
	case s != s: // NaN: empty window
		return "-"
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.1fms", s*1e3)
	default:
		return fmt.Sprintf("%.0fµs", s*1e6)
	}
}
