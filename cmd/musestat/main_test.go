package main

import (
	"strings"
	"testing"
	"time"

	"muse/internal/obs"
)

// mkSample scrapes a registry through the same WriteText → ParsePromText
// path the live console uses.
func mkSample(t *testing.T, r *obs.Registry, at time.Time) *sample {
	t.Helper()
	var buf strings.Builder
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	hists, scalars, err := obs.ParsePromText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	return &sample{at: at, hists: hists, scalars: scalars}
}

func TestRenderOnceSnapshot(t *testing.T) {
	r := obs.NewRegistry()
	r.Gauge(obs.GSrvSessionsLive).Set(3)
	r.Counter(obs.MSrvRequests).Add(100)
	r.Counter(obs.MSrvErrors).Add(5)
	r.Counter(obs.LabeledName(obs.MSrvScenarioSteps, "scenario", "fig1")).Add(60)
	r.Counter(obs.LabeledName(obs.MSrvScenarioSteps, "scenario", "fig4")).Add(30)
	h := r.Histogram(obs.HSrvStepSeconds, obs.SrvStepSecondsBounds...)
	for i := 0; i < 90; i++ {
		h.Observe(0.002)
	}
	cur := mkSample(t, r, time.Unix(100, 0))

	var out strings.Builder
	render(&out, "http://x/metrics", cur, nil, 5)
	text := out.String()
	for _, want := range []string{
		"cumulative",
		"live 3",
		"100 total",
		"errors 5 (5.0%)",
		"steps     90 total",
		"p50 ",
		"fig1 60",
		"fig4 30",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("snapshot missing %q:\n%s", want, text)
		}
	}
	// -once has no window, so no rates appear.
	if strings.Contains(text, "/s)") {
		t.Errorf("cumulative snapshot should not print windowed rates:\n%s", text)
	}
}

func TestRenderWindowedRates(t *testing.T) {
	r := obs.NewRegistry()
	req := r.Counter(obs.MSrvRequests)
	h := r.Histogram(obs.HSrvStepSeconds, obs.SrvStepSecondsBounds...)
	fig1 := r.Counter(obs.LabeledName(obs.MSrvScenarioSteps, "scenario", "fig1"))

	req.Add(10)
	h.Observe(0.001)
	fig1.Add(1)
	prev := mkSample(t, r, time.Unix(100, 0))

	req.Add(20) // +20 over a 2s window = 10.0/s
	for i := 0; i < 8; i++ {
		h.Observe(0.004) // windowed p50 reflects only these
	}
	fig1.Add(6) // 3.0/s
	cur := mkSample(t, r, time.Unix(102, 0))

	var out strings.Builder
	render(&out, "http://x/metrics", cur, prev, 5)
	text := out.String()
	for _, want := range []string{
		"window 2.0s",
		"30 total   10.0/s",
		"4.0/s", // 8 steps / 2s
		"(n=8)",
		"fig1 7 (3.0/s)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("windowed frame missing %q:\n%s", want, text)
		}
	}
	// The windowed p50 must sit in the 2.5–5ms bucket, not near the
	// cumulative 1ms observation.
	if q := cur.hists[obs.HSrvStepSeconds].Sub(prev.hists[obs.HSrvStepSeconds]).Quantile(0.5); q < 0.0025 || q > 0.005 {
		t.Errorf("windowed p50 = %g, want within (0.0025, 0.005]", q)
	}
}

func TestTopScenariosRanking(t *testing.T) {
	r := obs.NewRegistry()
	a := r.Counter(obs.LabeledName(obs.MSrvScenarioSteps, "scenario", "alpha"))
	b := r.Counter(obs.LabeledName(obs.MSrvScenarioSteps, "scenario", "beta"))
	c := r.Counter(obs.LabeledName(obs.MSrvScenarioSteps, "scenario", "gamma"))
	a.Add(100)
	b.Add(50)
	c.Add(10)
	prev := mkSample(t, r, time.Unix(0, 0))
	// beta is the most active this window despite the smaller total.
	b.Add(30)
	c.Add(5)
	cur := mkSample(t, r, time.Unix(2, 0))

	rows := topScenarios(cur, prev, 2)
	if len(rows) != 2 || rows[0].name != "beta" || rows[1].name != "gamma" {
		t.Fatalf("windowed ranking wrong: %+v", rows)
	}
	if rows[0].delta != 30 || rows[0].total != 80 {
		t.Errorf("beta row = %+v, want delta 30 total 80", rows[0])
	}

	// Cumulative mode (prev == nil) ranks by total.
	rows = topScenarios(cur, nil, 0)
	if len(rows) != 3 || rows[0].name != "alpha" || rows[1].name != "beta" || rows[2].name != "gamma" {
		t.Fatalf("cumulative ranking wrong: %+v", rows)
	}
}

func TestFmtSeconds(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{2.5, "2.50s"},
		{0.0123, "12.3ms"},
		{0.00042, "420µs"},
	}
	for _, c := range cases {
		if got := fmtSeconds(c.in); got != c.want {
			t.Errorf("fmtSeconds(%g) = %q, want %q", c.in, got, c.want)
		}
	}
	if got := fmtSeconds((&obs.PromHist{}).Quantile(0.5)); got != "-" {
		t.Errorf("NaN quantile rendered %q, want -", got)
	}
}
