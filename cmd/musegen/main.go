// Command musegen runs the Clio-style mapping generator: it reads a
// Muse document's schemas, constraints and correspondence arrows, and
// prints the generated mappings (with default G1 grouping functions
// and or-groups where arrows are ambiguous) in the document syntax —
// ready to be refined with cmd/muse.
//
// Usage:
//
//	musegen -doc scenario.muse -src CompDB -tgt OrgDB [-sql]
//
// With -scenario, musegen instead generates a built-in evaluation
// scenario's scaled source instance (the "scenario firehose"): it
// prints instance statistics and, with -out, exports every top-level
// set as CSV into the given directory.
//
//	musegen -scenario TPCH -scale SF2 -out /tmp/tpch-sf2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"muse"
	"muse/internal/load"
	"muse/internal/obs"
	"muse/internal/scenarios"
)

func main() {
	log.SetFlags(0)
	docPath := flag.String("doc", "", "path to the Muse document")
	src := flag.String("src", "", "source schema name")
	tgt := flag.String("tgt", "", "target schema name")
	sql := flag.Bool("sql", false, "also print the SQL transformation script")
	scenario := flag.String("scenario", "", "generate a built-in scenario's source instance (Mondial, DBLP, TPCH, Amalgam) instead of reading a document")
	scaleFlag := flag.String("scale", "1", "instance scale for -scenario: a float or SF<n>")
	outDir := flag.String("out", "", "with -scenario: export each top-level set as CSV into this directory")
	metricsPath := flag.String("metrics", "", "write a metrics snapshot here on exit (- for stdout)")
	flag.Parse()

	if *scenario != "" {
		if err := generateScenario(*scenario, *scaleFlag, *outDir); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *docPath == "" || *src == "" || *tgt == "" {
		flag.Usage()
		os.Exit(2)
	}
	text, err := os.ReadFile(*docPath)
	if err != nil {
		log.Fatal(err)
	}
	doc, err := muse.Parse(string(text))
	if err != nil {
		log.Fatal(err)
	}
	corrs := doc.CorrsBetween(*src, *tgt)
	if len(corrs) == 0 {
		log.Fatalf("document has no correspondences from %s to %s", *src, *tgt)
	}
	var o *muse.Obs
	if *metricsPath != "" {
		o = muse.NewObs()
	}
	sp := o.Start(obs.SpanGen)
	set, err := muse.GenerateMappings(doc.Deps[*src], doc.Deps[*tgt], corrs)
	if err != nil {
		log.Fatal(err)
	}
	if o != nil {
		o.Counter(obs.MGenMappings).Add(int64(len(set.Mappings)))
		o.Counter(obs.MGenAmbiguous).Add(int64(len(set.Ambiguous())))
		sp.Attr("corrs", len(corrs)).Attr("mappings", len(set.Mappings)).Attr("ambiguous", len(set.Ambiguous())).End()
	}
	fmt.Printf("# generated %d mapping(s), %d ambiguous\n\n", len(set.Mappings), len(set.Ambiguous()))
	for _, m := range set.Mappings {
		fmt.Println(muse.FormatMapping(m))
	}
	if *sql {
		if len(set.Ambiguous()) > 0 {
			log.Fatal("cannot emit SQL for ambiguous mappings; refine with cmd/muse first")
		}
		script, err := muse.GenerateScript(set)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(script)
	}
	if o != nil {
		w := os.Stdout
		if *metricsPath != "-" {
			f, err := os.Create(*metricsPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := o.Reg.WriteText(w); err != nil {
			log.Fatal(err)
		}
	}
}

// generateScenario builds the named scenario's source instance at the
// given scale, prints its statistics, and optionally exports each
// top-level set as CSV.
func generateScenario(name, scaleStr, outDir string) error {
	s, err := scenarios.ByName(name)
	if err != nil {
		return err
	}
	scale, err := scenarios.ParseScale(scaleStr)
	if err != nil {
		return err
	}
	start := time.Now()
	in := s.NewInstance(scale)
	elapsed := time.Since(start)
	fmt.Printf("scenario %s scale %g: %d sets, %d tuples, %d interned values, ~%d KB atoms, generated in %s\n",
		s.Name, scale, len(in.AllSets()), in.TupleCount(), in.Interned(), in.SizeBytes()/1024, elapsed.Round(time.Millisecond))
	if outDir == "" {
		return nil
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	for _, st := range in.Cat.TopLevel() {
		path := st.Path.String()
		f, err := os.Create(filepath.Join(outDir, path+".csv"))
		if err != nil {
			return err
		}
		if err := load.WriteCSV(in, path, f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s.csv (%d tuples)\n", path, in.Top(st).Len())
	}
	return nil
}
