// Command musegen runs the Clio-style mapping generator: it reads a
// Muse document's schemas, constraints and correspondence arrows, and
// prints the generated mappings (with default G1 grouping functions
// and or-groups where arrows are ambiguous) in the document syntax —
// ready to be refined with cmd/muse.
//
// Usage:
//
//	musegen -doc scenario.muse -src CompDB -tgt OrgDB [-sql]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"muse"
	"muse/internal/obs"
)

func main() {
	log.SetFlags(0)
	docPath := flag.String("doc", "", "path to the Muse document")
	src := flag.String("src", "", "source schema name")
	tgt := flag.String("tgt", "", "target schema name")
	sql := flag.Bool("sql", false, "also print the SQL transformation script")
	metricsPath := flag.String("metrics", "", "write a metrics snapshot here on exit (- for stdout)")
	flag.Parse()

	if *docPath == "" || *src == "" || *tgt == "" {
		flag.Usage()
		os.Exit(2)
	}
	text, err := os.ReadFile(*docPath)
	if err != nil {
		log.Fatal(err)
	}
	doc, err := muse.Parse(string(text))
	if err != nil {
		log.Fatal(err)
	}
	corrs := doc.CorrsBetween(*src, *tgt)
	if len(corrs) == 0 {
		log.Fatalf("document has no correspondences from %s to %s", *src, *tgt)
	}
	var o *muse.Obs
	if *metricsPath != "" {
		o = muse.NewObs()
	}
	sp := o.Start(obs.SpanGen)
	set, err := muse.GenerateMappings(doc.Deps[*src], doc.Deps[*tgt], corrs)
	if err != nil {
		log.Fatal(err)
	}
	if o != nil {
		o.Counter(obs.MGenMappings).Add(int64(len(set.Mappings)))
		o.Counter(obs.MGenAmbiguous).Add(int64(len(set.Ambiguous())))
		sp.Attr("corrs", len(corrs)).Attr("mappings", len(set.Mappings)).Attr("ambiguous", len(set.Ambiguous())).End()
	}
	fmt.Printf("# generated %d mapping(s), %d ambiguous\n\n", len(set.Mappings), len(set.Ambiguous()))
	for _, m := range set.Mappings {
		fmt.Println(muse.FormatMapping(m))
	}
	if *sql {
		if len(set.Ambiguous()) > 0 {
			log.Fatal("cannot emit SQL for ambiguous mappings; refine with cmd/muse first")
		}
		script, err := muse.GenerateScript(set)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(script)
	}
	if o != nil {
		w := os.Stdout
		if *metricsPath != "-" {
			f, err := os.Create(*metricsPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := o.Reg.WriteText(w); err != nil {
			log.Fatal(err)
		}
	}
}
