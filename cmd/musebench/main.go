// Command musebench reproduces the evaluation of Sec. VI of the paper:
// the scenario characteristics table, the Muse-G table of Fig. 5
// (scenario × G1/G2/G3), and the Muse-D table.
//
// Usage:
//
//	musebench                         # all tables, paper configuration
//	musebench -table museg -scenario DBLP
//	musebench -scale 0.2 -timeout 100ms   # faster, smaller instances
//	musebench -nokeys                 # ablation: no key-based reduction
//	musebench -noreal                 # ablation: synthetic examples only
//	musebench -parallel 4             # race 4 retrieval partitions per probe
//
// The Muse-G table carries two retrieval columns: "indexes" is the
// number of distinct hash indexes the session's shared index store
// materialized (each built at most once per run), and "idx build" is
// the total wall-clock spent building them.
//
//	musebench -cpuprofile cpu.out     # write a pprof CPU profile
//	musebench -memprofile mem.out     # write a pprof heap profile
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"muse/internal/bench"
	"muse/internal/designer"
	"muse/internal/obs"
	"muse/internal/scenarios"
)

func main() {
	log.SetFlags(0)
	table := flag.String("table", "all", "characteristics | museg | mused | auto | all")
	scenario := flag.String("scenario", "", "restrict to one scenario (Mondial, DBLP, TPCH, Amalgam)")
	scaleFlag := flag.String("scale", "1", "instance scale: a float or SF<n> (1 ≈ the paper's data sizes)")
	timeout := flag.Duration("timeout", 500*time.Millisecond, "per-question real-example retrieval budget")
	noKeys := flag.Bool("nokeys", false, "ablation: disable key-based question reduction")
	noReal := flag.Bool("noreal", false, "ablation: disable real-example retrieval")
	parallel := flag.Int("parallel", 0, "race this many retrieval partitions per probe query (0 = serial)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	metricsPath := flag.String("metrics", "", "accumulate run metrics and write a snapshot here on exit (- for stdout)")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	scale, err := scenarios.ParseScale(*scaleFlag)
	if err != nil {
		log.Fatal(err)
	}

	var o *obs.Obs
	var deltas *counterDeltas
	if *metricsPath != "" {
		o = obs.New()
		deltas = newCounterDeltas(o.Reg)
	}

	scns := scenarios.All()
	if *scenario != "" {
		s, err := scenarios.ByName(*scenario)
		if err != nil {
			log.Fatal(err)
		}
		scns = []*scenarios.Scenario{s}
	}

	runChar := *table == "all" || *table == "characteristics"
	runG := *table == "all" || *table == "museg"
	runD := *table == "all" || *table == "mused"
	runAuto := *table == "all" || *table == "auto"
	if !runChar && !runG && !runD && !runAuto {
		log.Fatalf("unknown table %q", *table)
	}

	if runChar {
		var rows []bench.Characteristics
		for _, s := range scns {
			row, err := bench.RunCharacteristics(s, scale)
			if err != nil {
				log.Fatal(err)
			}
			rows = append(rows, row)
		}
		fmt.Println(bench.FormatCharacteristics(rows))
	}

	if runG {
		cfg := bench.MuseGConfig{Scale: scale, Timeout: *timeout, NoKeys: *noKeys, NoReal: *noReal, Parallel: *parallel, Obs: o}
		var rows []bench.MuseGRow
		for _, s := range scns {
			for _, strat := range []designer.Strategy{designer.G1, designer.G2, designer.G3} {
				start := time.Now()
				row, err := bench.RunMuseG(s, strat, cfg)
				if err != nil {
					log.Fatal(err)
				}
				rows = append(rows, row)
				fmt.Fprintf(os.Stderr, "· %s %s done in %s%s\n", s.Name, strat,
					time.Since(start).Round(time.Millisecond), deltas.line())
			}
		}
		fmt.Println(bench.FormatMuseG(rows))
	}

	if runD {
		var rows []bench.MuseDRow
		for _, s := range scns {
			if s.PaperDQuestions == 0 && *scenario == "" {
				continue // the paper runs Muse-D only where ambiguity exists
			}
			row, err := bench.RunMuseDObs(s, scale, o)
			if err != nil {
				log.Fatal(err)
			}
			rows = append(rows, row)
			fmt.Fprintf(os.Stderr, "· %s Muse-D done%s\n", s.Name, deltas.line())
		}
		if len(rows) > 0 {
			fmt.Println(bench.FormatMuseD(rows))
		}
	}

	if runAuto {
		var rows []bench.AutoRow
		for _, s := range scns {
			row, err := bench.RunAuto(s, scale, 0)
			if err != nil {
				log.Fatal(err)
			}
			rows = append(rows, row)
			fmt.Fprintf(os.Stderr, "· %s auto done%s\n", s.Name, deltas.line())
		}
		fmt.Println(bench.FormatAuto(rows))
	}

	if o != nil {
		w := os.Stdout
		if *metricsPath != "-" {
			f, err := os.Create(*metricsPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := o.Reg.WriteText(w); err != nil {
			log.Fatal(err)
		}
	}
}

// counterDeltas prints, per benchmark row, how much a few headline
// counters moved since the previous row.
type counterDeltas struct {
	reg  *obs.Registry
	prev map[string]int64
}

var deltaNames = []struct{ label, name string }{
	{"questions", obs.MMuseGQuestions},
	{"evals", obs.MQueryEvals},
	{"idx builds", obs.MIndexBuilds},
	{"idx hits", obs.MIndexHits},
	{"chase tuples", obs.MChaseTuples},
}

func newCounterDeltas(reg *obs.Registry) *counterDeltas {
	return &counterDeltas{reg: reg, prev: make(map[string]int64)}
}

// line renders " [questions +12 evals +340 ...]" and advances the
// baseline; the nil receiver (metrics disabled) renders nothing.
func (d *counterDeltas) line() string {
	if d == nil {
		return ""
	}
	out := ""
	for _, dn := range deltaNames {
		cur := d.reg.Get(dn.name)
		if diff := cur - d.prev[dn.name]; diff != 0 {
			out += fmt.Sprintf(" %s +%d", dn.label, diff)
		}
		d.prev[dn.name] = cur
	}
	if out == "" {
		return ""
	}
	return " [" + out[1:] + "]"
}
