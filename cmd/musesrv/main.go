// Command musesrv serves Muse wizard sessions over HTTP/JSON: many
// designers refine mappings concurrently, each through the
// question/answer dialog of the Muse-G and Muse-D wizards, driven by
// any HTTP client (docs/API.md has the full reference and a curl
// walkthrough).
//
// Usage:
//
//	musesrv [-addr :8080] [-max-sessions 64] [-session-ttl 30m (alias -ttl)]
//	        [-store mem|wal] [-wal-dir DIR] [-fsync=true]
//	        [-prime=false] [-auto-threshold 0.15]
//	        [-doc scenario.muse -src S -tgt T [-instance I] [-name NAME]]
//	        [-trace spans.jsonl] [-access-log access.jsonl]
//	        [-slow-threshold 250ms] [-slow-cap 64] [-debug-addr 127.0.0.1:6060]
//
// With no -doc the server offers the built-in paper scenarios "fig1"
// and "fig4". A -doc flag adds the document's mapping set as a
// scenario named by -name (default "doc").
//
// Observability: every request gets an X-Muse-Request-Id (accepted
// from the client or minted) and a correlated span tree; -trace
// streams finished spans as JSONL, -access-log writes one JSON line
// per request, the flight recorder keeps the last -slow-cap steps
// slower than -slow-threshold at GET /debug/slow (0 captures every
// step, -1 disables), and -debug-addr exposes net/http/pprof and
// expvar on a separate listener (keep it private).
//
// Auto-answering: -auto-threshold T > 0 attaches the evidence ranker
// to every session, so each question envelope carries per-option
// scores ("ranking"/"rankings"), the recommended answer ("best"), and
// a "decisive" verdict at confidence T — an unattended client (see
// museload -answers ranked) follows the recommendation and only
// escalates indecisive questions. Resumed dialogs replay with the
// identical configuration, so rankings never perturb resume.
//
// Durability: -store mem (default) keeps accepted answers in memory
// so only eviction is survivable; -store wal appends each accepted
// answer to a per-session write-ahead log under -wal-dir and replays
// it on demand, so a restarted (or different, if the directory is
// shared) replica transparently resumes any token. -fsync=false trades
// crash safety for latency. docs/OPERATIONS.md covers the recovery
// semantics.
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight
// requests drain (bounded by -shutdown-timeout), then every live
// session is closed and the session store is flushed. -addr-file
// writes the bound address (useful with ":0" for tests and CI).
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"muse"
	"muse/internal/server"
	"muse/internal/server/walstore"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", ":8080", "listen address (\":0\" picks an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	maxSessions := flag.Int("max-sessions", server.DefaultMaxSessions, "maximum live sessions (idle LRU sessions are evicted past it)")
	sessionTTL := flag.Duration("session-ttl", server.DefaultTTL, "idle session lifetime (0 disables expiry)")
	flag.DurationVar(sessionTTL, "ttl", server.DefaultTTL, "alias for -session-ttl")
	storeKind := flag.String("store", "mem", "session store: \"mem\" (resume survives eviction) or \"wal\" (resume survives restarts; needs -wal-dir)")
	walDir := flag.String("wal-dir", "", "directory for per-session write-ahead logs (with -store wal)")
	fsync := flag.Bool("fsync", true, "fsync each WAL append before acknowledging the answer (with -store wal)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
	prime := flag.Bool("prime", true, "build scenario indexes and warm the first question before serving")
	autoThreshold := flag.Float64("auto-threshold", 0, "attach evidence rankings to every question, marked decisive at this confidence (0 disables)")
	docPath := flag.String("doc", "", "Muse document to serve as a scenario (optional)")
	src := flag.String("src", "", "source schema name (with -doc)")
	tgt := flag.String("tgt", "", "target schema name (with -doc)")
	inst := flag.String("instance", "", "source instance to draw examples from (with -doc, optional)")
	name := flag.String("name", "doc", "scenario name for the -doc mapping set")
	tracePath := flag.String("trace", "", "stream finished spans to this file as JSONL")
	accessPath := flag.String("access-log", "", "write one JSON line per request to this file")
	slowThreshold := flag.Duration("slow-threshold", server.DefaultSlowThreshold, "flight-record steps at least this slow (0 = every step, negative = off)")
	slowCap := flag.Int("slow-cap", server.DefaultSlowCap, "slow steps retained for GET /debug/slow")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and expvar on this address (empty = off; keep it private)")
	flag.Parse()

	scenarios := server.Builtin()
	if *docPath != "" {
		if *src == "" || *tgt == "" {
			log.Fatal("-doc requires -src and -tgt")
		}
		text, err := os.ReadFile(*docPath)
		if err != nil {
			log.Fatal(err)
		}
		doc, err := muse.Parse(string(text))
		if err != nil {
			log.Fatal(err)
		}
		sc, err := server.FromDocument(doc, *src, *tgt, *inst)
		if err != nil {
			log.Fatal(err)
		}
		scenarios[*name] = sc
	}

	o := muse.NewObs()
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		o.Tr.SetSink(f)
	}
	mg := server.NewManager(scenarios, o)
	mg.MaxSessions = *maxSessions
	mg.TTL = *sessionTTL
	mg.AutoThreshold = *autoThreshold
	switch *storeKind {
	case "mem":
		mg.Store = server.NewMemStore()
	case "wal":
		if *walDir == "" {
			log.Fatal("-store wal requires -wal-dir")
		}
		ws, stats, err := walstore.Open(*walDir, walstore.Options{Fsync: *fsync, Reg: o.Registry()})
		if err != nil {
			log.Fatal(err)
		}
		defer ws.Close()
		log.Printf("musesrv: WAL recovery: %d session(s), %d torn tail(s) truncated, %d corrupt log(s)",
			stats.Sessions, stats.TornTails, stats.Corrupt)
		mg.Store = ws
	default:
		log.Fatalf("-store %q: want \"mem\" or \"wal\"", *storeKind)
	}
	if *prime {
		t0 := time.Now()
		mg.Prime(context.Background())
		log.Printf("musesrv: primed %d scenario(s) in %v", len(scenarios), time.Since(t0).Round(time.Millisecond))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("musesrv listening on %s (%d scenario(s))", ln.Addr(), len(scenarios))

	srv := server.New(mg)
	if *slowThreshold < 0 {
		srv.Flight = nil
	} else {
		srv.Flight = server.NewFlightRecorder(*slowThreshold, *slowCap)
	}
	if *accessPath != "" {
		f, err := os.Create(*accessPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		srv.Access = server.NewAccessLog(f)
	}
	if *debugAddr != "" {
		go serveDebug(*debugAddr)
	}

	hs := &http.Server{Handler: srv}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("musesrv: %v, draining", s)
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		err := hs.Shutdown(ctx)
		cancel()
		mg.Close()
		if err != nil {
			log.Fatalf("musesrv: shutdown: %v", err)
		}
	case err := <-done:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}
}

// serveDebug exposes the profiling endpoints on their own listener so
// the serving port never leaks pprof/expvar: /debug/pprof/* and
// /debug/vars, the stock net/http/pprof and expvar handlers.
func serveDebug(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	log.Printf("musesrv: debug endpoints on http://%s/debug/pprof/ and /debug/vars", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Printf("musesrv: debug listener: %v", err)
	}
}
