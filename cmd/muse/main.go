// Command muse is the interactive mapping design wizard: it loads a
// scenario from a Muse document and walks the designer — you — through
// Muse-D (disambiguation) and Muse-G (grouping design) questions on
// small data examples, then prints the refined mappings.
//
// Usage:
//
//	muse -doc scenario.muse -src CompDB -tgt OrgDB [-instance I] [-mode session]
//	muse -scenario mondial [-scale 0.05] [-auto] [-auto-threshold 0.15]
//
// Instead of -doc/-src/-tgt, -scenario loads one of the paper's four
// Sec. VI evaluation scenarios (mondial, dblp, tpch, amalgam) with a
// deterministic synthetic instance at -scale (1 approximates the
// paper's data size).
//
// Modes:
//
//	session       Muse-D then Muse-G over every mapping (default)
//	disambiguate  Muse-D only
//	group         Muse-G only (requires -mapping; -sk optional)
//	groupmore     incremental Muse-G: try to drop grouping arguments
//	groupless     incremental Muse-G: try to add grouping arguments
//	joins         choose inner/outer join semantics (requires -mapping)
//
// In session mode every question is scored against the instance
// evidence (FD conformance, support counts, duplication): the prompt
// shows the suggested answer with its confidence, and pressing Enter
// (or "a" for a whole choice question) accepts the suggestions in one
// keystroke. -auto goes further and answers every question whose
// ranking is decisive at -auto-threshold unattended, only escalating
// ties and low-confidence questions to the terminal; the exit summary
// reports how many questions were saved.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"muse"
	"muse/internal/scenarios"
)

func main() {
	log.SetFlags(0)
	docPath := flag.String("doc", "", "path to the Muse document")
	src := flag.String("src", "", "source schema name")
	tgt := flag.String("tgt", "", "target schema name")
	inst := flag.String("instance", "", "source instance to draw examples from (optional)")
	mode := flag.String("mode", "session", "session | disambiguate | group | groupmore | groupless | joins")
	mapName := flag.String("mapping", "", "mapping to refine (group* modes)")
	skName := flag.String("sk", "", "grouping function to design (group* modes; default: all)")
	scenario := flag.String("scenario", "", "built-in Sec. VI scenario (mondial, dblp, tpch, amalgam) instead of -doc")
	scale := flag.String("scale", "0.05", "synthetic instance scale for -scenario (1 = paper size; SF<n> works)")
	auto := flag.Bool("auto", false, "answer decisively ranked questions unattended (session mode)")
	autoThreshold := flag.Float64("auto-threshold", muse.DefaultRankThreshold, "confidence margin for a decisive ranking")
	metricsPath := flag.String("metrics", "", "write a metrics snapshot here on exit (- for stdout)")
	tracePath := flag.String("trace", "", "stream span events (JSON lines) to this file")
	flag.Parse()

	var set *muse.MappingSet
	var real *muse.Instance
	var deps *muse.Constraints
	switch {
	case *scenario != "":
		sc, err := scenarios.ByName(*scenario)
		if err != nil {
			log.Fatal(err)
		}
		sf, err := scenarios.ParseScale(*scale)
		if err != nil {
			log.Fatal(err)
		}
		if set, err = sc.Generate(); err != nil {
			log.Fatal(err)
		}
		real = sc.NewInstance(sf)
		deps = sc.Src
	case *docPath == "" || *src == "" || *tgt == "":
		flag.Usage()
		os.Exit(2)
	default:
		text, err := os.ReadFile(*docPath)
		if err != nil {
			log.Fatal(err)
		}
		doc, err := muse.Parse(string(text))
		if err != nil {
			log.Fatal(err)
		}
		if set, err = doc.MappingSet(*src, *tgt); err != nil {
			log.Fatal(err)
		}
		if *inst != "" {
			real = doc.Instances[*inst]
			if real == nil {
				log.Fatalf("document has no instance %q", *inst)
			}
		}
		deps = doc.Deps[*src]
	}
	ui := &console{in: bufio.NewReader(os.Stdin)}

	var o *muse.Obs
	var traceFile *os.File
	if *metricsPath != "" || *tracePath != "" {
		o = muse.NewObs()
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				log.Fatal(err)
			}
			traceFile = f
			o.Tr.SetSink(traceFile)
		}
	}

	switch *mode {
	case "session":
		// Session mode always ranks: interactively the console shows
		// the suggestions, under -auto they answer decisive questions.
		session := muse.NewSession(deps, real).Observe(o).Rank(*autoThreshold)
		gd, dd := muse.GroupingDesigner(ui), muse.DisambiguationDesigner(ui)
		var unattended *muse.AutoDesigner
		if *auto {
			unattended = muse.NewAutoDesigner(*autoThreshold, ui, ui)
			unattended.Obs = o
			gd, dd = unattended, unattended
		}
		out, err := session.Run(set, gd, dd)
		if err != nil {
			log.Fatal(err)
		}
		printMappings(out.Mappings)
		fmt.Printf("(%d disambiguation question(s), %d grouping question(s))\n",
			session.Disambiguation.Stats.TotalQuestions(),
			session.Grouping.Stats.TotalQuestions())
		if unattended != nil {
			st := unattended.Stats
			fmt.Printf("(auto-answered %d of %d question(s), escalated %d — %.0f%% unattended)\n",
				st.Auto+st.Forced, st.Questions(), st.Escalated, 100*st.SavedFraction())
		}
	case "disambiguate":
		w := muse.NewDisambiguationWizard(deps, real)
		w.Obs = o
		var out []*muse.Mapping
		for _, m := range set.Mappings {
			ms, err := w.Disambiguate(m, ui)
			if err != nil {
				log.Fatal(err)
			}
			out = append(out, ms...)
		}
		printMappings(out)
	case "group", "groupmore", "groupless":
		m := set.ByName(*mapName)
		if m == nil {
			log.Fatalf("no mapping %q (have: %s)", *mapName, names(set.Mappings))
		}
		w := muse.NewGroupingWizard(deps, real)
		w.Obs = o
		var out *muse.Mapping
		var err error
		switch {
		case *mode == "group" && *skName == "":
			out, err = w.DesignMapping(m, ui)
		case *mode == "group":
			out, err = w.DesignSK(m, *skName, ui)
		case *mode == "groupmore":
			out, err = w.GroupMore(m, *skName, ui)
		default:
			out, err = w.GroupLess(m, *skName, ui)
		}
		if err != nil {
			log.Fatal(err)
		}
		printMappings([]*muse.Mapping{out})
	case "joins":
		m := set.ByName(*mapName)
		if m == nil {
			log.Fatalf("no mapping %q (have: %s)", *mapName, names(set.Mappings))
		}
		w := muse.NewDisambiguationWizard(deps, real)
		w.Obs = o
		out, err := w.DesignJoins(m, ui)
		if err != nil {
			log.Fatal(err)
		}
		printMappings(out)
	default:
		log.Fatalf("unknown mode %q", *mode)
	}

	if traceFile != nil {
		traceFile.Close()
	}
	if o != nil && *metricsPath != "" {
		if err := writeMetrics(o.Reg, *metricsPath); err != nil {
			log.Fatal(err)
		}
	}
}

// writeMetrics dumps the registry in the Prometheus text format to
// path ("-" for stdout).
func writeMetrics(reg *muse.Registry, path string) error {
	if path == "-" {
		return reg.WriteText(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteText(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printMappings(ms []*muse.Mapping) {
	fmt.Println("=== refined mappings ===")
	for _, m := range ms {
		fmt.Println(muse.FormatMapping(m))
	}
}

func names(ms []*muse.Mapping) string {
	var out []string
	for _, m := range ms {
		out = append(out, m.Name)
	}
	return strings.Join(out, ", ")
}

// console poses wizard questions on the terminal.
type console struct {
	in *bufio.Reader
	n  int
}

// ChooseScenario implements muse.GroupingDesigner.
func (c *console) ChooseScenario(q *muse.GroupingQuestion) (int, error) {
	c.n++
	origin := "synthetic example"
	if q.Real {
		origin = "example drawn from your instance"
	}
	fmt.Printf("\n━━━ Question %d — mapping %s, grouping %s (%s) ━━━\n", c.n, q.Mapping.Name, q.SK, origin)
	if q.Probe.Var != "" {
		fmt.Printf("Should %s take part in the grouping?\n", q.Probe)
	} else {
		fmt.Println("Should the data be grouped by its key (one group per key value)?")
	}
	fmt.Println("\nExample source:")
	fmt.Print(indent(q.Source.StringCompact()))
	fmt.Printf("\nScenario 1 — group by {%s}:\n", exprList(q.Include1))
	fmt.Print(indent(q.Scenario1.StringCompact()))
	fmt.Printf("\nScenario 2 — group by {%s}:\n", exprList(q.Include2))
	fmt.Print(indent(q.Scenario2.StringCompact()))
	if rk := q.Ranking; rk != nil {
		fmt.Printf("\nSuggested: scenario %d (confidence %.2f", rk.Best, rk.Confidence)
		if rk.Decisive {
			fmt.Print(", decisive")
		}
		fmt.Println(")")
		for _, s := range rk.Scores {
			fmt.Printf("  [%d] %.2f  %s\n", s.Option, s.Value, s.Evidence)
		}
	}
	for {
		prompt := "\nWhich target looks correct? [1/2] "
		if q.Ranking != nil {
			prompt = fmt.Sprintf("\nWhich target looks correct? [1/2, Enter = %d] ", q.Ranking.Best)
		}
		fmt.Print(prompt)
		line, err := c.in.ReadString('\n')
		if err != nil {
			return 0, err
		}
		switch strings.TrimSpace(line) {
		case "1":
			return 1, nil
		case "2":
			return 2, nil
		case "":
			if q.Ranking != nil {
				return q.Ranking.Best, nil
			}
		}
		fmt.Println("please answer 1 or 2")
	}
}

// SelectValues implements muse.DisambiguationDesigner.
func (c *console) SelectValues(q *muse.ChoiceQuestion) ([][]int, error) {
	c.n++
	fmt.Printf("\n━━━ Question %d — mapping %s is ambiguous ━━━\n", c.n, q.Mapping.Name)
	fmt.Println("Example source:")
	fmt.Print(indent(q.Source.StringCompact()))
	fmt.Println("\nPartial target instance:")
	fmt.Print(indent(q.Target.StringCompact()))
	ranked := len(q.Rankings) == len(q.Choices) && len(q.Choices) > 0
	if ranked {
		// The question batches every or-group into one prompt; when all
		// of them are ranked, one keystroke accepts the whole batch.
		fmt.Println("\nSuggested (per ambiguous element):")
		for i, ch := range q.Choices {
			rk := q.Rankings[i]
			state := ""
			if rk.Decisive {
				state = ", decisive"
			}
			fmt.Printf("  %s → [%d] %s (confidence %.2f%s)\n",
				ch.Element, rk.Best, ch.Values[rk.Best-1], rk.Confidence, state)
		}
		fmt.Print("accept all suggestions? [a = yes, anything else picks individually] ")
		line, err := c.in.ReadString('\n')
		if err != nil {
			return nil, err
		}
		switch strings.TrimSpace(line) {
		case "a", "A", "y", "yes":
			out := make([][]int, len(q.Choices))
			for i := range out {
				out[i] = []int{q.Rankings[i].Best - 1}
			}
			return out, nil
		}
	}
	out := make([][]int, len(q.Choices))
	for i, ch := range q.Choices {
		fmt.Printf("\nValue(s) for %s:\n", ch.Element)
		for j, v := range ch.Values {
			fmt.Printf("  [%d] %s\n", j+1, v)
		}
		suggest := ""
		if ranked {
			suggest = fmt.Sprintf(", Enter = %d", q.Rankings[i].Best)
		}
		for {
			fmt.Printf("pick one or more (e.g. 1 or 1,2%s): ", suggest)
			line, err := c.in.ReadString('\n')
			if err != nil {
				return nil, err
			}
			if ranked && strings.TrimSpace(line) == "" {
				out[i] = []int{q.Rankings[i].Best - 1}
				break
			}
			sel, ok := parseSelection(line, len(ch.Values))
			if ok {
				out[i] = sel
				break
			}
			fmt.Println("invalid selection")
		}
	}
	return out, nil
}

// ChooseJoin implements muse.JoinDesigner.
func (c *console) ChooseJoin(q *muse.JoinQuestion) (bool, error) {
	c.n++
	origin := "synthetic example"
	if q.Real {
		origin = "example drawn from your instance"
	}
	fmt.Printf("\n━━━ Question %d — join semantics of %s (%s) ━━━\n", c.n, q.Mapping.Name, origin)
	fmt.Printf("This data matches only {%s} (no full join partner):\n", strings.Join(q.Variant.Keep, ", "))
	fmt.Print(indent(q.Source.StringCompact()))
	fmt.Println("\nScenario 1 — exchange the unmatched data too (outer):")
	fmt.Print(indent(q.WithVariant.StringCompact()))
	fmt.Println("\nScenario 2 — exchange matched combinations only (inner):")
	fmt.Print(indent(q.WithoutVariant.StringCompact()))
	for {
		fmt.Print("\nWhich target looks correct? [1/2] ")
		line, err := c.in.ReadString('\n')
		if err != nil {
			return false, err
		}
		switch strings.TrimSpace(line) {
		case "1":
			return true, nil
		case "2":
			return false, nil
		}
		fmt.Println("please answer 1 or 2")
	}
}

func parseSelection(line string, n int) ([]int, bool) {
	var out []int
	for _, part := range strings.Split(strings.TrimSpace(line), ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 || v > n {
			return nil, false
		}
		out = append(out, v-1)
	}
	return out, len(out) > 0
}

func exprList(es []muse.Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}

func indent(s string) string {
	return "    " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n    ") + "\n"
}
