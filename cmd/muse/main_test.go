package main

import (
	"bufio"
	"strings"
	"testing"

	"muse"
)

func TestParseSelection(t *testing.T) {
	cases := []struct {
		in   string
		n    int
		want []int
		ok   bool
	}{
		{"1\n", 2, []int{0}, true},
		{" 2 \n", 2, []int{1}, true},
		{"1,2\n", 2, []int{0, 1}, true},
		{"3\n", 2, nil, false},
		{"0\n", 2, nil, false},
		{"x\n", 2, nil, false},
		{"\n", 2, nil, false},
	}
	for _, tc := range cases {
		got, ok := parseSelection(tc.in, tc.n)
		if ok != tc.ok {
			t.Errorf("parseSelection(%q) ok = %v, want %v", tc.in, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("parseSelection(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("parseSelection(%q) = %v, want %v", tc.in, got, tc.want)
			}
		}
	}
}

// question builds a minimal grouping question for console tests.
func consoleQuestion(t *testing.T) *muse.GroupingQuestion {
	t.Helper()
	doc, err := muse.Parse(`
schema S { A: set of record { x: int } }
schema T { B: set of record { y: int } }
mapping m { for a in S.A exists b in T.B where a.x = b.y }
instance I of S { A: (1) }
`)
	if err != nil {
		t.Fatal(err)
	}
	in := doc.Instances["I"]
	return &muse.GroupingQuestion{
		Mapping: doc.Mappings[0], SK: "SKx",
		Probe:     muse.E("a", "x"),
		Source:    in,
		Scenario1: in, Scenario2: in,
	}
}

func TestConsoleChooseScenario(t *testing.T) {
	q := consoleQuestion(t)
	c := &console{in: bufio.NewReader(strings.NewReader("junk\n2\n"))}
	ans, err := c.ChooseScenario(q)
	if err != nil || ans != 2 {
		t.Errorf("ChooseScenario = %d, %v; want 2 (after one invalid line)", ans, err)
	}
	c = &console{in: bufio.NewReader(strings.NewReader("1\n"))}
	if ans, _ := c.ChooseScenario(q); ans != 1 {
		t.Errorf("ChooseScenario = %d, want 1", ans)
	}
	// EOF surfaces as an error, not a hang.
	c = &console{in: bufio.NewReader(strings.NewReader(""))}
	if _, err := c.ChooseScenario(q); err == nil {
		t.Error("EOF should error")
	}
}

func TestConsoleSelectValues(t *testing.T) {
	doc, err := muse.Parse(`
schema S { A: set of record { x: int } }
schema T { B: set of record { y: int } }
mapping m { for a in S.A exists b in T.B where a.x = b.y }
instance I of S { A: (1) }
`)
	if err != nil {
		t.Fatal(err)
	}
	in := doc.Instances["I"]
	q := &muse.ChoiceQuestion{
		Mapping: doc.Mappings[0],
		Source:  in, Target: in,
		Choices: []muse.Choice{{Element: muse.E("b", "y"), Values: []muse.Value{muse.Const("42")}}},
	}
	c := &console{in: bufio.NewReader(strings.NewReader("bogus\n1\n"))}
	sel, err := c.SelectValues(q)
	if err != nil || len(sel) != 1 || len(sel[0]) != 1 || sel[0][0] != 0 {
		t.Errorf("SelectValues = %v, %v", sel, err)
	}
}

func TestNamesAndIndent(t *testing.T) {
	doc, _ := muse.Parse(`
schema S { A: set of record { x: int } }
schema T { B: set of record { y: int } }
mapping m { for a in S.A exists b in T.B where a.x = b.y }
`)
	if got := names(doc.Mappings); got != "m" {
		t.Errorf("names = %q", got)
	}
	if got := indent("a\nb"); got != "    a\n    b\n" {
		t.Errorf("indent = %q", got)
	}
}
