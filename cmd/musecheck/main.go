// Command musecheck runs the Muse cross-check harness: differential
// oracles that compare every production engine against an independent
// reference on the builtin scenarios plus seeded mutated and randomly
// generated ones (see internal/crosscheck and DESIGN.md §10).
//
// Usage:
//
//	musecheck [-seed 1] [-cases 8] [-queries 12] [-scale 0.02] [-q]
//
// The run is deterministic in -seed: a reported failure names the seed
// that produced it, so `musecheck -seed N` replays the exact inputs.
// On disagreement it prints every failure — including a minimized
// reproduction (shrunken source instance plus mappings or probe) —
// and exits non-zero.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"muse/internal/crosscheck"
)

func main() {
	log.SetFlags(0)
	seed := flag.Int64("seed", 1, "root seed for every randomized input (failures replay with the same seed)")
	cases := flag.Int("cases", 8, "randomized cases per oracle family on top of the builtin scenarios")
	queries := flag.Int("queries", 12, "random probes per instance in the query oracle")
	scale := flag.Float64("scale", 0.02, "Sec. VI scenario instance scale (1 ≈ the paper's)")
	quiet := flag.Bool("q", false, "suppress per-oracle progress on stderr")
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("musecheck: unexpected arguments %q", flag.Args())
	}

	cfg := crosscheck.Config{Seed: *seed, Cases: *cases, Queries: *queries, Scale: *scale}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) { log.Printf(format, args...) }
	}
	fails := crosscheck.RunAll(cfg)
	if len(fails) == 0 {
		fmt.Printf("musecheck: all oracles agree (seed %d)\n", *seed)
		return
	}
	for _, f := range fails {
		fmt.Printf("%s\n", f)
	}
	fmt.Printf("musecheck: %d failure(s) (replay with -seed %d)\n", len(fails), *seed)
	os.Exit(1)
}
