// Command musechase chases an instance with the mappings of a Muse
// document and prints the canonical universal solution.
//
// Usage:
//
//	musechase -doc scenario.muse -src CompDB -tgt OrgDB -instance I
//
// The document (see internal/parser for the syntax) declares the two
// schemas, their constraints, the mappings, and the instance.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"muse"
)

func main() {
	log.SetFlags(0)
	docPath := flag.String("doc", "", "path to the Muse document")
	src := flag.String("src", "", "source schema name")
	tgt := flag.String("tgt", "", "target schema name")
	inst := flag.String("instance", "", "instance name to chase (defaults to the only one)")
	xmlPath := flag.String("xml", "", "load the source instance from this XML file instead")
	outXML := flag.Bool("oxml", false, "print the result as XML instead of the nested text form")
	sql := flag.Bool("sql", false, "print the SQL transformation script instead of chasing")
	metricsPath := flag.String("metrics", "", "write a metrics snapshot here on exit (- for stdout)")
	tracePath := flag.String("trace", "", "stream span events (JSON lines) to this file")
	flag.Parse()

	if *docPath == "" || *src == "" || *tgt == "" {
		flag.Usage()
		os.Exit(2)
	}
	text, err := os.ReadFile(*docPath)
	if err != nil {
		log.Fatal(err)
	}
	doc, err := muse.Parse(string(text))
	if err != nil {
		log.Fatal(err)
	}
	set, err := doc.MappingSet(*src, *tgt)
	if err != nil {
		log.Fatal(err)
	}
	if len(set.Mappings) == 0 {
		log.Fatalf("document has no mappings from %s to %s", *src, *tgt)
	}
	if *sql {
		script, err := muse.GenerateScript(set)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(script)
		return
	}
	var source *muse.Instance
	if *xmlPath != "" {
		f, err := os.Open(*xmlPath)
		if err != nil {
			log.Fatal(err)
		}
		source, err = muse.LoadXML(doc.Schemas[*src], f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		name := *inst
		if name == "" {
			if len(doc.Instances) != 1 {
				log.Fatalf("document has %d instances; pick one with -instance", len(doc.Instances))
			}
			for n := range doc.Instances {
				name = n
			}
		}
		var ok bool
		source, ok = doc.Instances[name]
		if !ok {
			log.Fatalf("document has no instance %q", name)
		}
	}
	if amb := set.Ambiguous(); len(amb) > 0 {
		log.Fatalf("mapping %s is ambiguous; disambiguate it first (cmd/muse -mode disambiguate)", amb[0].Name)
	}
	var o *muse.Obs
	var traceFile *os.File
	if *metricsPath != "" || *tracePath != "" {
		o = muse.NewObs()
		if *tracePath != "" {
			traceFile, err = os.Create(*tracePath)
			if err != nil {
				log.Fatal(err)
			}
			o.Tr.SetSink(traceFile)
		}
	}
	out, err := muse.ChaseObs(source, o, set.Mappings...)
	if err != nil {
		log.Fatal(err)
	}
	if *outXML {
		if err := muse.WriteXML(out, os.Stdout); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Print(out)
	}
	if traceFile != nil {
		traceFile.Close()
	}
	if o != nil && *metricsPath != "" {
		w := os.Stdout
		if *metricsPath != "-" {
			f, err := os.Create(*metricsPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := o.Reg.WriteText(w); err != nil {
			log.Fatal(err)
		}
	}
}
