// Command museload is a deterministic-seeded load generator for
// musesrv: it drives N concurrent scripted wizard dialogs over
// HTTP/JSON — mixed scenarios, seeded answer policies, configurable
// think times, an abandonment fraction — and reports sessions/sec,
// steps/sec, error/409/503 rates, and p50/p95/p99 per-step latency
// both as measured by the client and as read off the server's
// /metrics histograms.
//
// Usage:
//
//	museload [-addr http://127.0.0.1:8080 | -addr-file FILE]
//	         [-scenarios fig1,fig4] [-concurrency 64]
//	         [-dialogs 200 | -duration 30s] [-seed 1]
//	         [-think-min 0] [-think-max 0] [-abandon 0]
//	         [-kill-resume 0 -resume-pause 1s]
//	         [-timeout 30s] [-report out.json]
//
// The workload is reproducible in the seed: scenario choice, answer
// policy, think times, abandonment, and kill/resume decisions all
// derive from -seed, so two runs against the same server replay
// identical dialog scripts (latencies of course vary with the
// machine). The JSON report is the trajectory format of
// BENCH_server_baseline.json; a short seeded burst is CI's
// `make loadtest-smoke`.
//
// -kill-resume verifies durable resume: the chosen fraction of
// dialogs snapshots the raw pending-question bytes mid-dialog, goes
// quiet for -resume-pause (long enough for the server's -ttl sweep to
// evict the session, so the next request must rebuild it from the
// session store), then re-fetches the question and requires byte
// identity before finishing the dialog normally. The report counts
// verified round-trips in resume_checks; a divergence is an error.
// CI's `make resume-smoke` is this against a WAL-backed musesrv.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"muse/internal/obs"
)

func main() {
	log.SetFlags(0)
	cfg := parseFlags()

	client := &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Concurrency * 2,
			MaxIdleConnsPerHost: cfg.Concurrency * 2,
			IdleConnTimeout:     90 * time.Second,
		},
	}
	ld := &loader{cfg: cfg, client: client}
	if err := ld.ping(); err != nil {
		log.Fatalf("museload: server unreachable at %s: %v", cfg.Addr, err)
	}

	report := ld.run()
	out := os.Stdout
	if cfg.Report != "" {
		f, err := os.Create(cfg.Report)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		log.Fatal(err)
	}
	if report.ErrorsTotal > 0 {
		log.Printf("museload: %d unexpected errors (first: %s)", report.ErrorsTotal, firstOr(report.ErrorSample, "?"))
		os.Exit(1)
	}
}

func firstOr(s []string, def string) string {
	if len(s) > 0 {
		return s[0]
	}
	return def
}

// Config is the seeded workload definition, echoed into the report so
// a snapshot is self-describing.
type Config struct {
	Addr        string        `json:"addr"`
	Scenarios   []string      `json:"scenarios"`
	Concurrency int           `json:"concurrency"`
	Dialogs     int64         `json:"dialogs"`
	Duration    time.Duration `json:"duration_ns"`
	Seed        int64         `json:"seed"`
	ThinkMin    time.Duration `json:"think_min_ns"`
	ThinkMax    time.Duration `json:"think_max_ns"`
	Abandon     float64       `json:"abandon"`
	KillResume  float64       `json:"kill_resume"`
	ResumePause time.Duration `json:"resume_pause_ns"`
	Timeout     time.Duration `json:"timeout_ns"`
	Slowest     int           `json:"slowest"`
	Answers     string        `json:"answers"`
	Report      string        `json:"-"`
}

func parseFlags() Config {
	var cfg Config
	addr := flag.String("addr", "http://127.0.0.1:8080", "musesrv base URL")
	addrFile := flag.String("addr-file", "", "read host:port from this file (musesrv -addr-file) instead of -addr")
	scenarios := flag.String("scenarios", "fig1,fig4", "comma-separated scenario mix")
	flag.IntVar(&cfg.Concurrency, "concurrency", 64, "concurrent designers (one dialog each at a time)")
	dialogs := flag.Int64("dialogs", 200, "total dialog budget (0 = unbounded, requires -duration)")
	flag.DurationVar(&cfg.Duration, "duration", 0, "stop starting new dialogs after this long (0 = until -dialogs)")
	flag.Int64Var(&cfg.Seed, "seed", 1, "workload seed (scenario mix, answers, think, abandonment)")
	flag.DurationVar(&cfg.ThinkMin, "think-min", 0, "minimum designer think time per answer")
	flag.DurationVar(&cfg.ThinkMax, "think-max", 0, "maximum designer think time per answer")
	flag.Float64Var(&cfg.Abandon, "abandon", 0, "fraction of dialogs abandoned mid-way [0,1)")
	flag.Float64Var(&cfg.KillResume, "kill-resume", 0, "fraction of dialogs that go idle mid-way and verify byte-identical resume [0,1]")
	flag.DurationVar(&cfg.ResumePause, "resume-pause", time.Second, "idle span for -kill-resume dialogs (set past the server's -ttl so eviction actually happens)")
	flag.DurationVar(&cfg.Timeout, "timeout", 30*time.Second, "per-request HTTP timeout")
	flag.IntVar(&cfg.Slowest, "slowest", 5, "report the server-side span breakdown for this many slowest steps (0 = off)")
	flag.StringVar(&cfg.Answers, "answers", "seeded", `answer policy: "seeded" (random from -seed) or "ranked" (follow the server's decisive ranking, seeded fallback; needs musesrv -auto-threshold)`)
	flag.StringVar(&cfg.Report, "report", "", "write the JSON report here (default stdout)")
	flag.Parse()

	cfg.Dialogs = *dialogs
	if cfg.Dialogs <= 0 && cfg.Duration <= 0 {
		log.Fatal("museload: need a -dialogs budget or a -duration")
	}
	if cfg.ThinkMax < cfg.ThinkMin {
		cfg.ThinkMax = cfg.ThinkMin
	}
	cfg.Addr = strings.TrimRight(*addr, "/")
	if *addrFile != "" {
		b, err := os.ReadFile(*addrFile)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Addr = "http://" + strings.TrimSpace(string(b))
	}
	if !strings.Contains(cfg.Addr, "://") {
		cfg.Addr = "http://" + cfg.Addr
	}
	for _, s := range strings.Split(*scenarios, ",") {
		if s = strings.TrimSpace(s); s != "" {
			cfg.Scenarios = append(cfg.Scenarios, s)
		}
	}
	if len(cfg.Scenarios) == 0 {
		log.Fatal("museload: -scenarios is empty")
	}
	if cfg.Answers != "seeded" && cfg.Answers != "ranked" {
		log.Fatalf("museload: -answers %q: want \"seeded\" or \"ranked\"", cfg.Answers)
	}
	return cfg
}

// Report is the machine-readable outcome; BENCH_server_baseline.json
// snapshots two of these (pre- and post-pass) plus a comment.
type Report struct {
	Recorded       string   `json:"recorded"`
	Config         Config   `json:"config"`
	ElapsedSeconds float64  `json:"elapsed_seconds"`
	Sessions       Sessions `json:"sessions"`
	Steps          Steps    `json:"steps"`
	// ClientStepSeconds is measured around each step-producing request
	// (create or answer) at the client.
	ClientStepSeconds Quantiles `json:"client_step_seconds"`
	// ServerStepSeconds is estimated from the muse_server_step_seconds
	// histogram scraped off /metrics (handler-side wall time, no
	// network or queueing).
	ServerStepSeconds Quantiles        `json:"server_step_seconds"`
	ServerCounters    map[string]int64 `json:"server_counters"`
	// SlowestSteps closes the loop from load number to root cause: the
	// client's slowest steps, each with the server-side span breakdown
	// (chase vs query vs everything else) pulled off GET /debug/slow by
	// the request id museload sent. Steps the server's flight recorder
	// did not capture (under its threshold) carry client data only.
	SlowestSteps []SlowStepReport `json:"slowest_steps,omitempty"`
	// ResumeChecks counts -kill-resume round-trips where the re-fetched
	// question was byte-identical to the pre-pause snapshot.
	ResumeChecks int64    `json:"resume_checks"`
	ErrorsTotal  int64    `json:"errors_total"`
	ErrorSample  []string `json:"error_sample,omitempty"`
}

// SlowStepReport is one slow step correlated across the wire.
type SlowStepReport struct {
	RequestID     string  `json:"request_id"`
	Route         string  `json:"route,omitempty"`
	ClientSeconds float64 `json:"client_seconds"`
	// Server-side fields, present when /debug/slow had the request id.
	Captured      bool    `json:"captured"`
	TraceID       string  `json:"trace_id,omitempty"`
	ServerSeconds float64 `json:"server_seconds,omitempty"`
	ChaseSeconds  float64 `json:"chase_seconds,omitempty"`
	QuerySeconds  float64 `json:"query_seconds,omitempty"`
	StepSeconds   float64 `json:"step_seconds,omitempty"` // core.step: wizard work toward the next question
	OtherSeconds  float64 `json:"other_seconds,omitempty"`
	Spans         int     `json:"spans,omitempty"`
}

type Sessions struct {
	Started     int64   `json:"started"`
	Finished    int64   `json:"finished"`
	Abandoned   int64   `json:"abandoned"`
	Rejected503 int64   `json:"rejected_503"`
	Busy409     int64   `json:"busy_409"`
	Failed      int64   `json:"failed"`
	PerSecond   float64 `json:"per_second"`
}

type Steps struct {
	Total   int64 `json:"total"`
	Answers int64 `json:"answers"`
	// AutoAnswered counts answers where the -answers ranked policy
	// followed the server's decisive recommendation (0 under seeded).
	AutoAnswered int64   `json:"auto_answered"`
	PerSecond    float64 `json:"per_second"`
}

// NullableSeconds renders NaN and ±Inf as JSON null instead of
// letting encoding/json reject the whole report: a histogram with no
// samples has *absent* quantiles (obs.Quantile returns NaN), not zero
// ones, and a zero-traffic run must still produce a valid report.
type NullableSeconds float64

func (f NullableSeconds) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

type Quantiles struct {
	P50   NullableSeconds `json:"p50"`
	P95   NullableSeconds `json:"p95"`
	P99   NullableSeconds `json:"p99"`
	Mean  NullableSeconds `json:"mean"`
	Max   NullableSeconds `json:"max"`
	Count int64           `json:"count"`
}

// loader owns the shared run state; workers touch only atomics and
// their own rng, so the workload stays deterministic per worker.
type loader struct {
	cfg    Config
	client *http.Client

	claimed   atomic.Int64 // dialogs handed out
	started   atomic.Int64
	finished  atomic.Int64
	abandoned atomic.Int64
	rejected  atomic.Int64
	busy      atomic.Int64
	failed    atomic.Int64
	steps     atomic.Int64
	answers   atomic.Int64
	auto      atomic.Int64 // ranked-policy answers that followed the recommendation
	resumes   atomic.Int64 // verified kill/resume round-trips
	errs      atomic.Int64

	errMu     sync.Mutex
	errSample []string
}

func (ld *loader) ping() error {
	resp, err := ld.client.Get(ld.cfg.Addr + "/healthz")
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: %s", resp.Status)
	}
	return nil
}

func (ld *loader) noteErr(format string, args ...any) {
	ld.errs.Add(1)
	ld.errMu.Lock()
	if len(ld.errSample) < 8 {
		ld.errSample = append(ld.errSample, fmt.Sprintf(format, args...))
	}
	ld.errMu.Unlock()
}

func (ld *loader) run() *Report {
	start := time.Now()
	var deadline time.Time
	if ld.cfg.Duration > 0 {
		deadline = start.Add(ld.cfg.Duration)
	}
	recs := make([][]stepRec, ld.cfg.Concurrency)
	var wg sync.WaitGroup
	for w := 0; w < ld.cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Every stream of randomness derives from (seed, worker):
			// reruns replay the same scripts.
			wk := &worker{
				ld:  ld,
				rng: rand.New(rand.NewSource(ld.cfg.Seed*1_000_003 + int64(w))),
			}
			for {
				if !deadline.IsZero() && time.Now().After(deadline) {
					break
				}
				if ld.cfg.Dialogs > 0 && ld.claimed.Add(1) > ld.cfg.Dialogs {
					break
				}
				wk.dialog()
			}
			recs[w] = wk.recs
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var allRecs []stepRec
	for _, l := range recs {
		allRecs = append(allRecs, l...)
	}
	all := make([]float64, len(allRecs))
	for i, rec := range allRecs {
		all[i] = rec.lat
	}
	rep := &Report{
		Recorded:       time.Now().UTC().Format("2006-01-02"),
		Config:         ld.cfg,
		ElapsedSeconds: elapsed.Seconds(),
		Sessions: Sessions{
			Started:     ld.started.Load(),
			Finished:    ld.finished.Load(),
			Abandoned:   ld.abandoned.Load(),
			Rejected503: ld.rejected.Load(),
			Busy409:     ld.busy.Load(),
			Failed:      ld.failed.Load(),
			PerSecond:   float64(ld.finished.Load()) / elapsed.Seconds(),
		},
		Steps: Steps{
			Total:        ld.steps.Load(),
			Answers:      ld.answers.Load(),
			AutoAnswered: ld.auto.Load(),
			PerSecond:    float64(ld.steps.Load()) / elapsed.Seconds(),
		},
		ClientStepSeconds: exactQuantiles(all),
		ResumeChecks:      ld.resumes.Load(),
		ErrorsTotal:       ld.errs.Load(),
		ErrorSample:       ld.errSample,
	}
	if err := ld.scrapeMetrics(rep); err != nil {
		ld.noteErr("scraping /metrics: %v", err)
	}
	if ld.cfg.Slowest > 0 {
		if err := ld.reportSlowest(rep, allRecs); err != nil {
			ld.noteErr("correlating slow steps: %v", err)
		}
	}
	rep.ErrorsTotal = ld.errs.Load()
	rep.ErrorSample = ld.errSample
	return rep
}

// stepRec is one client-measured step with the request id that went
// over the wire, so the server-side capture is addressable afterwards.
type stepRec struct {
	lat   float64
	rid   string
	route string
}

// wireSlow mirrors the GET /debug/slow payload (the server's SlowStep
// plus its span records), as much of it as the breakdown needs.
type wireSlow struct {
	Steps []struct {
		RequestID string `json:"request_id"`
		TraceID   string `json:"trace_id"`
		Route     string `json:"route"`
		DurNS     int64  `json:"dur_ns"`
		Spans     []struct {
			Name  string `json:"name"`
			DurNS int64  `json:"dur_ns"`
		} `json:"spans"`
	} `json:"steps"`
}

// reportSlowest fills rep.SlowestSteps: the top-K client latencies,
// each joined (by request id) with the span tree the server's flight
// recorder captured, reduced to the chase / query / other breakdown.
func (ld *loader) reportSlowest(rep *Report, allRecs []stepRec) error {
	sort.Slice(allRecs, func(i, j int) bool { return allRecs[i].lat > allRecs[j].lat })
	k := ld.cfg.Slowest
	if k > len(allRecs) {
		k = len(allRecs)
	}
	if k == 0 {
		return nil
	}

	resp, err := ld.client.Get(ld.cfg.Addr + "/debug/slow")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var slow wireSlow
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&slow); err != nil {
			return err
		}
	} // 404 = flight recorder off: report client latencies alone

	byRID := make(map[string]int, len(slow.Steps))
	for i := range slow.Steps {
		byRID[slow.Steps[i].RequestID] = i
	}
	for _, rec := range allRecs[:k] {
		out := SlowStepReport{RequestID: rec.rid, Route: rec.route, ClientSeconds: rec.lat}
		if i, ok := byRID[rec.rid]; ok {
			st := slow.Steps[i]
			out.Captured = true
			out.TraceID = st.TraceID
			out.Route = st.Route
			out.ServerSeconds = float64(st.DurNS) / 1e9
			for _, sp := range st.Spans {
				switch sp.Name {
				case obs.SpanChase:
					out.ChaseSeconds += float64(sp.DurNS) / 1e9
				case obs.SpanQueryEval:
					out.QuerySeconds += float64(sp.DurNS) / 1e9
				case obs.SpanCoreStep:
					out.StepSeconds += float64(sp.DurNS) / 1e9
				}
			}
			out.OtherSeconds = out.ServerSeconds - out.ChaseSeconds - out.QuerySeconds
			if out.OtherSeconds < 0 {
				out.OtherSeconds = 0
			}
			out.Spans = len(st.Spans)
		}
		rep.SlowestSteps = append(rep.SlowestSteps, out)
	}
	return nil
}

// exactQuantiles computes exact sample quantiles client-side (the
// server side interpolates from histogram buckets; comparing the two
// sanity-checks the estimator under load).
func exactQuantiles(lats []float64) Quantiles {
	q := Quantiles{Count: int64(len(lats))}
	if len(lats) == 0 {
		nan := NullableSeconds(math.NaN())
		q.P50, q.P95, q.P99, q.Mean, q.Max = nan, nan, nan, nan, nan
		return q
	}
	sort.Float64s(lats)
	at := func(p float64) float64 {
		i := int(p*float64(len(lats))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return lats[i]
	}
	sum := 0.0
	for _, v := range lats {
		sum += v
	}
	q.P50, q.P95, q.P99 = NullableSeconds(at(0.50)), NullableSeconds(at(0.95)), NullableSeconds(at(0.99))
	q.Mean, q.Max = NullableSeconds(sum/float64(len(lats))), NullableSeconds(lats[len(lats)-1])
	return q
}

// worker is one virtual designer: strictly one dialog at a time.
type worker struct {
	ld   *loader
	rng  *rand.Rand
	recs []stepRec
}

// wireRanking is the slice of the question's ranking envelope the
// ranked answer policy needs: the recommended option and whether the
// server judged the evidence decisive.
type wireRanking struct {
	Best     int  `json:"best"`
	Decisive bool `json:"decisive"`
}

// wireStep is the part of the step envelope the answer policy needs.
type wireStep struct {
	Token string `json:"token"`
	Error string `json:"error"`
	Code  string `json:"code"`
	Step  struct {
		Seq      int    `json:"seq"`
		State    string `json:"state"`
		Error    string `json:"error"`
		Grouping struct {
			Ranking *wireRanking `json:"ranking"`
		} `json:"grouping"`
		Choice struct {
			Choices []struct {
				Values []string `json:"values"`
			} `json:"choices"`
			Rankings []wireRanking `json:"rankings"`
		} `json:"choice"`
	} `json:"step"`
}

// dialog runs one scripted session: create, answer until terminal (or
// the seeded abandonment point), fetch the result, delete.
func (wk *worker) dialog() {
	ld := wk.ld
	scenario := ld.cfg.Scenarios[wk.rng.Intn(len(ld.cfg.Scenarios))]
	abandonAt := -1
	if wk.rng.Float64() < ld.cfg.Abandon {
		abandonAt = 1 + wk.rng.Intn(8)
	}
	resumeAt := -1
	if wk.rng.Float64() < ld.cfg.KillResume {
		resumeAt = 1 + wk.rng.Intn(4)
	}

	status, step, err := wk.step("POST", "/v1/sessions", fmt.Sprintf(`{"scenario": %q}`, scenario))
	switch {
	case err != nil:
		ld.noteErr("create: %v", err)
		return
	case status == http.StatusServiceUnavailable:
		ld.rejected.Add(1)
		return
	case status != http.StatusCreated:
		ld.noteErr("create: status %d code %s", status, step.Code)
		return
	}
	ld.started.Add(1)
	token := step.Token

	for n := 1; ; n++ {
		switch step.Step.State {
		case "done":
			wk.result(token)
			ld.finished.Add(1)
			wk.del(token)
			return
		case "failed":
			ld.failed.Add(1)
			wk.del(token)
			return
		}
		if n == abandonAt {
			ld.abandoned.Add(1)
			wk.del(token)
			return
		}
		if n == resumeAt {
			if !wk.resumeCheck(token) {
				wk.del(token)
				return
			}
		}
		wk.think()
		var status int
		var err error
		status, step, err = wk.step("POST", "/v1/sessions/"+token+"/answer", wk.answerBody(step))
		switch {
		case err != nil:
			ld.noteErr("answer: %v", err)
			wk.del(token)
			return
		case status == http.StatusConflict:
			// Backpressure, not an error: some other client holds the
			// session (never this tool's own doing — one worker per
			// dialog — but a shared server can race us).
			ld.busy.Add(1)
			wk.del(token)
			return
		case status != http.StatusOK:
			ld.noteErr("answer: status %d code %s error %q", status, step.Code, step.Error)
			wk.del(token)
			return
		}
		ld.answers.Add(1)
	}
}

// answerBody derives the answer for the pending question. The default
// seeded policy scripts everything off the worker rng: grouping
// questions get a fair coin over the two scenarios; choice questions
// select one alternative per or-group, occasionally two (which keeps
// several interpretations and splits the mapping — deliberately the
// expensive path). The ranked policy plays an unattended designer
// instead: whenever the question envelope carries a decisive ranking
// (musesrv -auto-threshold) it follows the recommended option, and
// only indecisive questions fall back to the seeded script.
func (wk *worker) answerBody(step wireStep) string {
	ranked := wk.ld.cfg.Answers == "ranked"
	if step.Step.State == "grouping_question" {
		if rk := step.Step.Grouping.Ranking; ranked && rk != nil && rk.Decisive {
			wk.ld.auto.Add(1)
			return fmt.Sprintf(`{"scenario": %d}`, rk.Best)
		}
		return fmt.Sprintf(`{"scenario": %d}`, 1+wk.rng.Intn(2))
	}
	rks := step.Step.Choice.Rankings
	followRanked := ranked && len(rks) == len(step.Step.Choice.Choices)
	if followRanked {
		for _, rk := range rks {
			if !rk.Decisive {
				followRanked = false
				break
			}
		}
	}
	var b strings.Builder
	b.WriteString(`{"choices": [`)
	for gi, g := range step.Step.Choice.Choices {
		if gi > 0 {
			b.WriteByte(',')
		}
		if followRanked {
			fmt.Fprintf(&b, "[%d]", rks[gi].Best-1)
			continue
		}
		n := len(g.Values)
		first := wk.rng.Intn(n)
		if n >= 2 && wk.rng.Float64() < 0.15 {
			second := (first + 1 + wk.rng.Intn(n-1)) % n
			fmt.Fprintf(&b, "[%d,%d]", first, second)
		} else {
			fmt.Fprintf(&b, "[%d]", first)
		}
	}
	b.WriteString("]}")
	if followRanked {
		wk.ld.auto.Add(1)
	}
	return b.String()
}

// resumeCheck plays the crashed-client script: snapshot the pending
// question's raw bytes, go idle past the server's session TTL (the
// next request then finds the token evicted and must rebuild it from
// the session store), and require the re-fetched question to be
// byte-identical. Returns false if the dialog cannot continue.
func (wk *worker) resumeCheck(token string) bool {
	ld := wk.ld
	status, before, err := wk.do("GET", "/v1/sessions/"+token, "")
	if err != nil {
		ld.noteErr("resume snapshot: %v", err)
		return false
	}
	if status != http.StatusOK {
		ld.noteErr("resume snapshot: status %d", status)
		return false
	}
	time.Sleep(ld.cfg.ResumePause)
	status, after, err := wk.do("GET", "/v1/sessions/"+token, "")
	if err != nil {
		ld.noteErr("resume fetch: %v", err)
		return false
	}
	if status != http.StatusOK {
		ld.noteErr("resume fetch: status %d (body %s)", status, after)
		return false
	}
	if !bytes.Equal(before, after) {
		ld.noteErr("resume diverged for %s:\n  before: %s\n  after:  %s", token, before, after)
		return false
	}
	ld.resumes.Add(1)
	return true
}

func (wk *worker) think() {
	if wk.ld.cfg.ThinkMax <= 0 {
		return
	}
	d := wk.ld.cfg.ThinkMin
	if span := wk.ld.cfg.ThinkMax - wk.ld.cfg.ThinkMin; span > 0 {
		d += time.Duration(wk.rng.Int63n(int64(span)))
	}
	time.Sleep(d)
}

// step issues one step-producing request, recording its latency. Each
// step carries a fresh client-minted request id, so a slow step's
// server-side trace is addressable afterwards (reportSlowest).
func (wk *worker) step(method, path, body string) (int, wireStep, error) {
	var out wireStep
	rid := obs.NewTraceID()
	route := "answer"
	if method == "POST" && path == "/v1/sessions" {
		route = "create"
	}
	start := time.Now()
	status, data, err := wk.doRID(method, path, body, rid)
	lat := time.Since(start).Seconds()
	if err != nil {
		return 0, out, err
	}
	wk.recs = append(wk.recs, stepRec{lat: lat, rid: rid, route: route})
	wk.ld.steps.Add(1)
	if err := json.Unmarshal(data, &out); err != nil {
		return status, out, fmt.Errorf("decoding %s %s: %w", method, path, err)
	}
	return status, out, nil
}

func (wk *worker) result(token string) {
	status, _, err := wk.do("GET", "/v1/sessions/"+token+"/result", "")
	if err != nil {
		wk.ld.noteErr("result: %v", err)
	} else if status != http.StatusOK {
		wk.ld.noteErr("result: status %d", status)
	}
}

func (wk *worker) del(token string) {
	// Best-effort cleanup; the server's TTL sweep catches stragglers.
	wk.do("DELETE", "/v1/sessions/"+token, "")
}

func (wk *worker) do(method, path, body string) (int, []byte, error) {
	return wk.doRID(method, path, body, "")
}

func (wk *worker) doRID(method, path, body, rid string) (int, []byte, error) {
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, wk.ld.cfg.Addr+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	if rid != "" {
		req.Header.Set("X-Muse-Request-Id", rid)
	}
	resp, err := wk.ld.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}

// scrapeMetrics reads /metrics and fills the server-side view: the
// step-latency quantiles (estimated from the histogram buckets with
// the same interpolation the server's own WriteText uses) and the
// muse_server_* counters. The parser is the shared
// obs.ParsePromText, so museload and musestat read the exposition
// identically.
func (ld *loader) scrapeMetrics(rep *Report) error {
	resp, err := ld.client.Get(ld.cfg.Addr + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	hists, counters, err := obs.ParsePromText(resp.Body)
	if err != nil {
		return err
	}
	rep.ServerCounters = make(map[string]int64)
	for name, v := range counters {
		if strings.HasPrefix(name, "muse_server_") {
			rep.ServerCounters[name] = int64(v)
		}
	}
	h, ok := hists[obs.HSrvStepSeconds]
	if !ok {
		return fmt.Errorf("no %s histogram on /metrics", obs.HSrvStepSeconds)
	}
	// Quantile returns NaN on an empty histogram; NullableSeconds
	// renders that as null instead of failing the whole report.
	rep.ServerStepSeconds = Quantiles{
		P50:   NullableSeconds(h.Quantile(0.50)),
		P95:   NullableSeconds(h.Quantile(0.95)),
		P99:   NullableSeconds(h.Quantile(0.99)),
		Mean:  NullableSeconds(math.NaN()),
		Max:   NullableSeconds(math.NaN()),
		Count: h.Count,
	}
	if h.Count > 0 {
		rep.ServerStepSeconds.Mean = NullableSeconds(h.Sum / float64(h.Count))
	}
	return nil
}
