package main

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"muse/internal/obs"
)

// TestZeroTrafficReportEncodes is the regression test for the NaN
// report bug: a run that observed no steps (server idle, -duration
// elapsed before any dialog) has empty latency samples and an empty
// server histogram, whose quantiles are NaN — encoding/json rejects
// NaN outright, which used to fail the entire report. Absent
// quantiles must render as null and the report must stay valid JSON.
func TestZeroTrafficReportEncodes(t *testing.T) {
	rep := &Report{
		Config:            Config{Scenarios: []string{"fig1"}, Answers: "seeded"},
		ClientStepSeconds: exactQuantiles(nil),
	}
	// The server-side path: an empty scraped histogram yields NaN from
	// every Quantile call, exactly what scrapeMetrics stores.
	var h obs.PromHist
	rep.ServerStepSeconds = Quantiles{
		P50:  NullableSeconds(h.Quantile(0.50)),
		P95:  NullableSeconds(h.Quantile(0.95)),
		P99:  NullableSeconds(h.Quantile(0.99)),
		Mean: NullableSeconds(math.NaN()),
		Max:  NullableSeconds(math.NaN()),
	}
	if !math.IsNaN(float64(rep.ServerStepSeconds.P95)) {
		t.Fatalf("empty PromHist quantile = %v, want NaN (the bug's trigger)", rep.ServerStepSeconds.P95)
	}

	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("zero-traffic report does not encode: %v", err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	for _, section := range []string{"client_step_seconds", "server_step_seconds"} {
		q, ok := decoded[section].(map[string]any)
		if !ok {
			t.Fatalf("report lacks %s", section)
		}
		for _, field := range []string{"p50", "p95", "p99", "mean", "max"} {
			if v, present := q[field]; !present || v != nil {
				t.Errorf("%s.%s = %v, want null for a zero-traffic run", section, field, v)
			}
		}
		if c, _ := q["count"].(float64); c != 0 {
			t.Errorf("%s.count = %v, want 0", section, q["count"])
		}
	}
}

// TestNullableSecondsMarshal pins the wire encoding: finite values
// render as ordinary numbers, NaN and both infinities as null.
func TestNullableSecondsMarshal(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{0.0125, "0.0125"},
		{math.NaN(), "null"},
		{math.Inf(1), "null"},
		{math.Inf(-1), "null"},
	}
	for _, c := range cases {
		got, err := json.Marshal(NullableSeconds(c.in))
		if err != nil {
			t.Fatalf("marshal %v: %v", c.in, err)
		}
		if string(got) != c.want {
			t.Errorf("NullableSeconds(%v) = %s, want %s", c.in, got, c.want)
		}
	}
}

// TestAnswerBodyRanked pins the ranked answer policy: decisive
// rankings are followed verbatim (and tallied), indecisive or absent
// rankings fall back to the seeded script.
func TestAnswerBodyRanked(t *testing.T) {
	ld := &loader{cfg: Config{Answers: "ranked"}}
	wk := &worker{ld: ld, rng: rand.New(rand.NewSource(1))}

	var step wireStep
	step.Step.State = "grouping_question"
	step.Step.Grouping.Ranking = &wireRanking{Best: 2, Decisive: true}
	if got := wk.answerBody(step); got != `{"scenario": 2}` {
		t.Errorf("decisive grouping answer = %q, want scenario 2", got)
	}
	if ld.auto.Load() != 1 {
		t.Errorf("auto tally = %d, want 1", ld.auto.Load())
	}

	// Indecisive: seeded fallback, no tally.
	step.Step.Grouping.Ranking = &wireRanking{Best: 2, Decisive: false}
	if got := wk.answerBody(step); !strings.HasPrefix(got, `{"scenario": `) {
		t.Errorf("indecisive grouping answer = %q", got)
	}
	if ld.auto.Load() != 1 {
		t.Errorf("auto tally moved on an indecisive question: %d", ld.auto.Load())
	}

	// Choice question with all groups decisive: Best is 1-based on the
	// wire, selections are 0-based.
	step = wireStep{}
	step.Step.State = "choice_question"
	step.Step.Choice.Choices = []struct {
		Values []string `json:"values"`
	}{{Values: []string{"a", "b", "c"}}, {Values: []string{"x", "y"}}}
	step.Step.Choice.Rankings = []wireRanking{{Best: 3, Decisive: true}, {Best: 1, Decisive: true}}
	if got := wk.answerBody(step); got != `{"choices": [[2],[0]]}` {
		t.Errorf("decisive choice answer = %q, want [[2],[0]]", got)
	}
	if ld.auto.Load() != 2 {
		t.Errorf("auto tally = %d, want 2", ld.auto.Load())
	}

	// One indecisive group escalates the whole question to the seeded
	// script (partial auto-answers would mix policies mid-question).
	step.Step.Choice.Rankings[1].Decisive = false
	before := ld.auto.Load()
	got := wk.answerBody(step)
	if !strings.HasPrefix(got, `{"choices": [`) {
		t.Errorf("escalated choice answer = %q", got)
	}
	if ld.auto.Load() != before {
		t.Error("auto tally moved on an escalated choice question")
	}
}
