package main

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"muse/internal/obs"
)

// TestParsePromRoundTrip feeds a registry's own WriteText output to
// the scraper and checks the reassembled histogram yields the same
// quantile estimates as the live histogram.
func TestParsePromRoundTrip(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("muse_server_answers_total").Add(41)
	r.Gauge("muse_server_sessions_live").Set(7)
	h := r.Histogram("muse_server_step_seconds", obs.SrvStepSecondsBounds...)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000 * 0.02) // 20µs..20ms
	}
	var buf strings.Builder
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	hists, scalars, err := obs.ParsePromText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if scalars["muse_server_answers_total"] != 41 || scalars["muse_server_sessions_live"] != 7 {
		t.Errorf("scalars wrong: %v", scalars)
	}
	ph, ok := hists["muse_server_step_seconds"]
	if !ok {
		t.Fatal("histogram missing from scrape")
	}
	if ph.Count != 1000 {
		t.Errorf("count = %d, want 1000", ph.Count)
	}
	for _, p := range []float64{0.5, 0.95, 0.99} {
		want := h.Quantile(p)
		got := ph.Quantile(p)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("scraped Quantile(%g) = %g, live = %g", p, got, want)
		}
	}
}

func TestExactQuantiles(t *testing.T) {
	var lats []float64
	for i := 1; i <= 100; i++ {
		lats = append(lats, float64(i))
	}
	// Shuffle deterministically; exactQuantiles sorts.
	rng := rand.New(rand.NewSource(7))
	rng.Shuffle(len(lats), func(i, j int) { lats[i], lats[j] = lats[j], lats[i] })
	q := exactQuantiles(lats)
	if q.P50 != 50 || q.P95 != 95 || q.P99 != 99 || q.Max != 100 || q.Count != 100 {
		t.Errorf("quantiles wrong: %+v", q)
	}
	if math.Abs(float64(q.Mean)-50.5) > 1e-9 {
		t.Errorf("mean = %g, want 50.5", float64(q.Mean))
	}
	// Empty input has no quantiles: NaN internally, null on the wire.
	if z := exactQuantiles(nil); z.Count != 0 || !math.IsNaN(float64(z.P50)) {
		t.Errorf("empty quantiles: %+v", z)
	}
}

// TestAnswerBodyDeterministic pins the seeded answer policy: the same
// seed replays the same answers, and choice answers are always valid
// (non-empty distinct in-range selections per group).
func TestAnswerBodyDeterministic(t *testing.T) {
	mk := func(seed int64) []string {
		wk := &worker{ld: &loader{cfg: Config{Answers: "seeded"}}, rng: rand.New(rand.NewSource(seed))}
		var step wireStep
		step.Step.State = "grouping_question"
		var out []string
		for i := 0; i < 10; i++ {
			out = append(out, wk.answerBody(step))
		}
		step.Step.State = "choice_question"
		step.Step.Choice.Choices = []struct {
			Values []string `json:"values"`
		}{{Values: []string{"a", "b", "c"}}, {Values: []string{"x"}}}
		for i := 0; i < 10; i++ {
			out = append(out, wk.answerBody(step))
		}
		return out
	}
	a, b := mk(42), mk(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("answer %d diverged under one seed: %q vs %q", i, a[i], b[i])
		}
	}
	if c := mk(43); strings.Join(a, ",") == strings.Join(c, ",") {
		t.Error("different seeds produced identical scripts (policy ignores the seed?)")
	}
	// Single-value groups can never select two.
	for _, s := range a[10:] {
		if !strings.HasSuffix(s, ",[0]]}") {
			t.Errorf("invalid selection for a 1-value group: %q", s)
		}
	}
}
