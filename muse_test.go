package muse_test

import (
	"strings"
	"testing"

	"muse"
)

// The facade tests drive the whole library through the public API
// only, the way a downstream user would.

const quickScenario = `
schema S {
  Companies: set of record { cid: int, cname: string, location: string },
  Projects:  set of record { pid: string, pname: string, cid: int }
}
schema T {
  Orgs: set of record {
    oname: string,
    Projects: set of record { pname: string }
  }
}
key S.Companies(cid)
ref f1: S.Projects(cid) -> S.Companies(cid)

correspondence S.Companies.cname -> T.Orgs.oname
correspondence S.Projects.pname -> T.Orgs.Projects.pname

instance I of S {
  Companies: (1, "IBM", "NY"), (2, "IBM", "SF"), (3, "SBC", "NY")
  Projects: (p1, "DB", 1), (p2, "Web", 2), (p3, "WiFi", 3)
}
`

func TestPublicAPIGenerateAndChase(t *testing.T) {
	doc, err := muse.Parse(quickScenario)
	if err != nil {
		t.Fatal(err)
	}
	set, err := muse.GenerateMappings(doc.Deps["S"], doc.Deps["T"], doc.CorrsBetween("S", "T"))
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Mappings) == 0 {
		t.Fatal("no mappings generated")
	}
	out, err := muse.Chase(doc.Instances["I"], set.Mappings...)
	if err != nil {
		t.Fatal(err)
	}
	if out.TupleCount() == 0 {
		t.Error("chase produced nothing")
	}
	ok, err := muse.IsSolution(doc.Instances["I"], out, set.Mappings...)
	if err != nil || !ok {
		t.Errorf("chase result not a solution: %v", err)
	}
}

func TestPublicAPIGroupingWizard(t *testing.T) {
	doc, err := muse.Parse(quickScenario)
	if err != nil {
		t.Fatal(err)
	}
	set, err := muse.GenerateMappings(doc.Deps["S"], doc.Deps["T"], doc.CorrsBetween("S", "T"))
	if err != nil {
		t.Fatal(err)
	}
	// Find the joined mapping (it has a grouping function to design).
	var m *muse.Mapping
	for _, cand := range set.Mappings {
		if len(cand.SKs) > 0 && len(cand.For) > 1 {
			m = cand
		}
	}
	if m == nil {
		t.Fatal("no mapping with a grouping function")
	}
	fn := m.SKs[0].SK.Fn

	// The designer wants projects grouped by company name.
	var desired []muse.Expr
	info, err := m.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range info.SrcOrder {
		if info.SrcVars[v].HasAtom("cname") {
			desired = append(desired, muse.E(v, "cname"))
		}
	}
	w := muse.NewGroupingWizard(doc.Deps["S"], doc.Instances["I"])
	out, err := w.DesignSK(m, fn, muse.NewGroupingOracle(fn, desired))
	if err != nil {
		t.Fatal(err)
	}
	got := out.SKFor(fn).SK.String()
	if !strings.Contains(got, ".cname") || strings.Contains(got, ",") {
		t.Errorf("designed %s, want grouping by cname alone", got)
	}
	if w.Stats.TotalQuestions() == 0 {
		t.Error("wizard asked no questions")
	}
}

func TestPublicAPIBuilders(t *testing.T) {
	schema, err := muse.NewSchema("Z", muse.Record(
		muse.Field("Items", muse.SetOf(muse.Record(
			muse.Field("id", muse.IntType()),
			muse.Field("name", muse.StringType()),
		))),
	))
	if err != nil {
		t.Fatal(err)
	}
	cat, err := muse.NewCatalog(schema)
	if err != nil {
		t.Fatal(err)
	}
	in := muse.NewInstance(cat)
	in.MustInsertVals("Items", "1", "alpha")
	if in.TupleCount() != 1 {
		t.Error("builder insert failed")
	}
	c := muse.NewConstraints(cat)
	c.MustAddKey("Items", "id")
	if !c.Valid(in) {
		t.Error("valid instance rejected")
	}
	in.MustInsertVals("Items", "1", "beta")
	if c.Valid(in) {
		t.Error("key violation not detected through facade")
	}
}

func TestPublicAPIFormatRoundTrip(t *testing.T) {
	doc, err := muse.Parse(quickScenario)
	if err != nil {
		t.Fatal(err)
	}
	printed := muse.FormatDocument(doc)
	doc2, err := muse.Parse(printed)
	if err != nil {
		t.Fatalf("round-trip failed: %v", err)
	}
	if !muse.Isomorphic(doc.Instances["I"], doc2.Instances["I"]) {
		t.Error("instance changed across round trip")
	}
}

func TestPublicAPIStrategyOracle(t *testing.T) {
	doc, err := muse.Parse(quickScenario)
	if err != nil {
		t.Fatal(err)
	}
	set, err := muse.GenerateMappings(doc.Deps["S"], doc.Deps["T"], doc.CorrsBetween("S", "T"))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range set.Mappings {
		if len(m.SKs) == 0 {
			continue
		}
		for _, strat := range []muse.Strategy{muse.G1, muse.G2, muse.G3} {
			oracle, err := muse.StrategyOracle(strat, m)
			if err != nil {
				t.Fatalf("%s: %v", strat, err)
			}
			w := muse.NewGroupingWizard(doc.Deps["S"], nil)
			if _, err := w.DesignMapping(m, oracle); err != nil {
				t.Errorf("%s designer failed: %v", strat, err)
			}
		}
	}
}
