// Quickstart: the paper's running example end to end.
//
// Parses the Fig. 1 scenario (schemas, constraints, mappings m1–m3,
// and the Fig. 2 source instance) from the Muse document syntax,
// chases the source with the mappings, and prints the canonical
// universal solution — the instance shown in Fig. 2 of the paper.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"muse"
)

const scenario = `
schema CompDB {
  Companies: set of record { cid: int, cname: string, location: string },
  Projects:  set of record { pid: string, pname: string, cid: int, manager: string },
  Employees: set of record { eid: string, ename: string, contact: string }
}

schema OrgDB {
  Orgs: set of record {
    oname: string,
    Projects: set of record { pname: string, manager: string }
  },
  Employees: set of record { eid: string, ename: string }
}

ref f1: CompDB.Projects(cid) -> CompDB.Companies(cid)
ref f2: CompDB.Projects(manager) -> CompDB.Employees(eid)

mapping m1 {
  for c in CompDB.Companies
  exists o in OrgDB.Orgs
  where c.cname = o.oname and o.Projects = SKProjects(c.cid, c.cname, c.location)
}

mapping m2 {
  for c in CompDB.Companies, p in CompDB.Projects, e in CompDB.Employees
  satisfy p.cid = c.cid and e.eid = p.manager
  exists o in OrgDB.Orgs, p1 in o.Projects, e1 in OrgDB.Employees
  satisfy p1.manager = e1.eid
  where c.cname = o.oname and e.eid = e1.eid and e.ename = e1.ename
    and p.pname = p1.pname
    and o.Projects = SKProjects(c.cid, c.cname, c.location, p.pid, p.pname, p.cid, p.manager, e.eid, e.ename, e.contact)
}

mapping m3 {
  for e in CompDB.Employees
  exists e1 in OrgDB.Employees
  where e.eid = e1.eid and e.ename = e1.ename
}

instance I of CompDB {
  Companies: (111, "IBM", "Almaden"), (112, "SBC", "NY")
  Projects: (p1, "DBSearch", 111, e14), (p2, "WebSearch", 111, e15)
  Employees: (e14, "Smith", x2292), (e15, "Anna", x2283), (e16, "Brown", x2567)
}
`

func main() {
	doc, err := muse.Parse(scenario)
	if err != nil {
		log.Fatal(err)
	}
	set, err := doc.MappingSet("CompDB", "OrgDB")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== The schema mapping (S, T, Σ) ===")
	for _, m := range set.Mappings {
		fmt.Println(m)
		fmt.Println()
	}

	source := doc.Instances["I"]
	fmt.Println("=== Source instance I (Fig. 2, left) ===")
	fmt.Println(source)

	target, err := muse.Chase(source, set.Mappings...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Universal solution: chase of I with {m1, m2, m3} (Fig. 2, right) ===")
	fmt.Println(target)

	ok, err := muse.IsSolution(source, target, set.Mappings...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chase result is a solution: %v\n", ok)
}
