// Incremental: refining an existing grouping design (Sec. III-C).
//
// A designer settled on grouping projects by company name some time
// ago. Requirements changed twice:
//
//  1. "group less" — projects should now be split further, by company
//     name AND location; Muse-G probes only the attributes not already
//     implied by the current design;
//  2. "group more" — later the split turns out too fine, and the
//     designer merges back to name alone; one question per current
//     argument decides what can be dropped.
//
// Run with: go run ./examples/incremental
package main

import (
	"fmt"
	"log"
	"strings"

	"muse"
)

const scenario = `
schema CompDB {
  Companies: set of record { cid: int, cname: string, location: string },
  Projects:  set of record { pid: string, pname: string, cid: int }
}
schema OrgDB {
  Orgs: set of record {
    oname: string,
    Projects: set of record { pname: string }
  }
}
ref f1: CompDB.Projects(cid) -> CompDB.Companies(cid)

mapping m {
  for c in CompDB.Companies, p in CompDB.Projects
  satisfy p.cid = c.cid
  exists o in OrgDB.Orgs, p1 in o.Projects
  where c.cname = o.oname and p.pname = p1.pname
    and o.Projects = SKProjects(c.cname)
}

instance I of CompDB {
  Companies: (11, "IBM", "NY"), (12, "IBM", "SF"), (13, "SBC", "NY")
  Projects: (p1, "DB", 11), (p2, "Web", 12), (p3, "WiFi", 13)
}
`

type narrator struct {
	inner muse.GroupingDesigner
	n     int
}

func (na *narrator) ChooseScenario(q *muse.GroupingQuestion) (int, error) {
	na.n++
	ans, err := na.inner.ChooseScenario(q)
	if err == nil {
		fmt.Printf("  question %d: probe on %-12s → designer picks scenario %d\n", na.n, q.Probe.String(), ans)
	}
	return ans, err
}

func main() {
	doc, err := muse.Parse(scenario)
	if err != nil {
		log.Fatal(err)
	}
	m := doc.Mappings[0]
	source := doc.Instances["I"]
	wiz := muse.NewGroupingWizard(doc.Deps["CompDB"], source)

	fmt.Printf("Current design: %s\n\n", m.SKFor("SKProjects").SK)

	fmt.Println("── group less: split by location as well ──")
	finer, err := wiz.GroupLess(m, "SKProjects",
		&narrator{inner: muse.NewGroupingOracle("SKProjects",
			[]muse.Expr{muse.E("c", "cname"), muse.E("c", "location")})})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Refined to: %s\n\n", finer.SKFor("SKProjects").SK)
	show(source, finer)

	fmt.Println("\n── group more: merge back to name alone ──")
	coarser, err := wiz.GroupMore(finer, "SKProjects",
		&narrator{inner: muse.NewGroupingOracle("SKProjects",
			[]muse.Expr{muse.E("c", "cname")})})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Refined to: %s\n\n", coarser.SKFor("SKProjects").SK)
	show(source, coarser)
}

func show(source *muse.Instance, m *muse.Mapping) {
	out, err := muse.Chase(source, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Resulting organization of the data:")
	fmt.Print("    " + strings.ReplaceAll(strings.TrimRight(out.StringCompact(), "\n"), "\n", "\n    ") + "\n")
}
