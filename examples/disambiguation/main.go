// Disambiguation: Muse-D on the paper's Fig. 4 walkthrough.
//
// The mapping scenario associates a project with a supervisor and an
// email, but the source offers two candidates for each: the manager or
// the tech lead. The ambiguous mapping encodes four interpretations;
// Muse-D shows ONE example and ONE partial target instance with two
// choice lists, and the designer's picks (Anna as supervisor, Jon's
// email) select the corresponding interpretation — exactly the
// Fig. 4(b) interaction.
//
// Run with: go run ./examples/disambiguation
package main

import (
	"fmt"
	"log"
	"strings"

	"muse"
)

const scenario = `
schema CompDB {
  Projects: set of record { pid: string, pname: string, manager: string, tech_lead: string },
  Employees: set of record { eid: string, ename: string, contact: string }
}
schema OrgDB {
  Projects: set of record { pname: string, supervisor: string, email: string }
}
ref g1: CompDB.Projects(manager) -> CompDB.Employees(eid)
ref g2: CompDB.Projects(tech_lead) -> CompDB.Employees(eid)

mapping ma {
  for p in CompDB.Projects, e1 in CompDB.Employees, e2 in CompDB.Employees
  satisfy e1.eid = p.manager and e2.eid = p.tech_lead
  exists p1 in OrgDB.Projects
  where p.pname = p1.pname
    and (e1.ename = p1.supervisor or e2.ename = p1.supervisor)
    and (e1.contact = p1.email or e2.contact = p1.email)
}

instance I of CompDB {
  Projects: (P1, "DB", e4, e5)
  Employees: (e4, "Jon", "jon@ibm"), (e5, "Anna", "anna@ibm")
}
`

// chooser prints the single Muse-D question and fills in the choices
// the way the Fig. 4(b) designer does.
type chooser struct{}

func (chooser) SelectValues(q *muse.ChoiceQuestion) ([][]int, error) {
	origin := "synthetic"
	if q.Real {
		origin = "drawn from I"
	}
	fmt.Printf("Example source Ie (%s):\n%s\n", origin, indent(q.Source.StringCompact()))
	fmt.Printf("Partial target instance (ambiguous slots are nulls):\n%s\n", indent(q.Target.StringCompact()))
	fmt.Println("Choices:")
	for _, ch := range q.Choices {
		var vals []string
		for _, v := range ch.Values {
			vals = append(vals, v.String())
		}
		fmt.Printf("  %s ∈ { %s }\n", ch.Element, strings.Join(vals, " | "))
	}
	fmt.Println()
	fmt.Println("The designer picks Anna for supervisor and jon@ibm for email.")
	// supervisor: alternative 1 (tech lead's name); email: alternative
	// 0 (manager's contact).
	return [][]int{{1}, {0}}, nil
}

func indent(s string) string {
	return "    " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n    ") + "\n"
}

func main() {
	doc, err := muse.Parse(scenario)
	if err != nil {
		log.Fatal(err)
	}
	ma := doc.Mappings[0]
	fmt.Println("=== The ambiguous mapping (Fig. 4(a)) ===")
	fmt.Println(ma)
	fmt.Printf("\nIt encodes %d interpretations; Muse-D asks ONE question:\n\n", ma.AlternativeCount())

	wizard := muse.NewDisambiguationWizard(doc.Deps["CompDB"], doc.Instances["I"])
	selected, err := wizard.Disambiguate(ma, chooser{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Selected interpretation ===")
	fmt.Println(selected[0])

	target, err := muse.Chase(doc.Instances["I"], selected[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Its chase over I ===")
	fmt.Println(target)
}
