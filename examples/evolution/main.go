// Evolution: a schema-evolution task driven end to end (Sec. V).
//
// A bibliography database evolves from a flat relational layout to a
// nested one. The Clio-style generator derives the initial mappings
// from attribute correspondences; one of them is ambiguous (a paper's
// "contact" can be the author's or the editor's email). A full Muse
// session then runs: Muse-D resolves the ambiguity, Muse-G designs the
// grouping semantics (group publications by venue, not by the G1
// default), and the refined mappings migrate the data.
//
// Run with: go run ./examples/evolution
package main

import (
	"fmt"
	"log"

	"muse"
)

const schemas = `
schema OldBib {
  pubs:    set of record { pubid: string, title: string, year: int, venue: string, author: string, editor: string },
  people:  set of record { pid: string, name: string, email: string }
}
schema NewBib {
  Venues: set of record {
    vname: string,
    Papers: set of record { title: string, year: int, contact: string }
  }
}
key OldBib.pubs(pubid)
key OldBib.people(pid)
ref ra: OldBib.pubs(author) -> OldBib.people(pid)
ref re: OldBib.pubs(editor) -> OldBib.people(pid)

instance I of OldBib {
  pubs: (p1, "Nested Mappings", 2006, "VLDB", a1, a2),
        (p2, "Data Exchange", 2005, "TCS", a2, a3),
        (p3, "Muse", 2008, "ICDE", a1, a3)
  people: (a1, "Alice", "alice@uni"), (a2, "Bob", "bob@lab"), (a3, "Carol", "carol@org")
}
`

func main() {
	doc, err := muse.Parse(schemas)
	if err != nil {
		log.Fatal(err)
	}
	old, neu := doc.Deps["OldBib"], doc.Deps["NewBib"]
	source := doc.Instances["I"]

	// Step 1: the mapping tool proposes mappings from the arrows.
	corrs := []muse.Corr{
		muse.NewCorr("pubs", "venue", "Venues", "vname"),
		muse.NewCorr("pubs", "title", "Venues.Papers", "title"),
		muse.NewCorr("pubs", "year", "Venues.Papers", "year"),
		muse.NewCorr("people", "email", "Venues.Papers", "contact"),
	}
	set, err := muse.GenerateMappings(old, neu, corrs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== Generated %d mapping(s); %d ambiguous ===\n", len(set.Mappings), len(set.Ambiguous()))
	for _, m := range set.Mappings {
		fmt.Println(m)
		fmt.Println()
	}

	// Step 2: a full Muse session. The designer wants the author's
	// email as the contact, and papers grouped by venue name alone.
	session := muse.NewSession(old, source)
	choices := &muse.ChoiceOracle{Selections: [][]int{{0}}}
	refined, err := session.Run(set, byVenue{}, choices)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Refined mapping(s) after the session ===")
	for _, m := range refined.Mappings {
		fmt.Println(m)
		fmt.Println()
	}
	fmt.Printf("Muse-D questions: %d, Muse-G questions: %d\n\n",
		session.Disambiguation.Stats.TotalQuestions(),
		session.Grouping.Stats.TotalQuestions())

	// Step 3: migrate.
	target, err := muse.Chase(source, refined.Mappings...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Migrated data (papers grouped by venue) ===")
	fmt.Println(target)
}

// byVenue scripts the designer's intent per question: group papers by
// the publication's venue when the mapping carries one, and by
// everything (the G1 default) otherwise. It delegates the actual
// scenario comparison to a grouping oracle built for the question's
// mapping.
type byVenue struct{}

func (byVenue) ChooseScenario(q *muse.GroupingQuestion) (int, error) {
	desired := q.Mapping.Poss()
	info, err := q.Mapping.Analyze()
	if err != nil {
		return 0, err
	}
	for _, v := range info.SrcOrder {
		if info.SrcVars[v].HasAtom("venue") {
			desired = []muse.Expr{muse.E(v, "venue")}
			break
		}
	}
	oracle := muse.NewGroupingOracle(q.SK, desired)
	return oracle.ChooseScenario(q)
}
