// Grouping: Muse-G on the paper's Fig. 3 walkthrough.
//
// A designer has SKProjects(c.cname) in mind — projects grouped by
// company name. Muse-G probes the candidate grouping attributes one by
// one, each probe showing a two-tuples-per-relation example and two
// candidate target instances. This program scripts the designer with a
// grouping oracle and prints every question as it is posed, first
// without keys (Sec. III-A: one question per non-implied attribute)
// and then with a key on Companies(cid) (Sec. III-B: the designer who
// groups by all attributes needs only two questions, Thm 3.2).
//
// Run with: go run ./examples/grouping
package main

import (
	"fmt"
	"log"
	"strings"

	"muse"
)

const scenario = `
schema CompDB {
  Companies: set of record { cid: int, cname: string, location: string },
  Projects:  set of record { pid: string, pname: string, cid: int, manager: string },
  Employees: set of record { eid: string, ename: string, contact: string }
}
schema OrgDB {
  Orgs: set of record {
    oname: string,
    Projects: set of record { pname: string, manager: string }
  },
  Employees: set of record { eid: string, ename: string }
}
ref f1: CompDB.Projects(cid) -> CompDB.Companies(cid)
ref f2: CompDB.Projects(manager) -> CompDB.Employees(eid)

mapping m2 {
  for c in CompDB.Companies, p in CompDB.Projects, e in CompDB.Employees
  satisfy p.cid = c.cid and e.eid = p.manager
  exists o in OrgDB.Orgs, p1 in o.Projects, e1 in OrgDB.Employees
  satisfy p1.manager = e1.eid
  where c.cname = o.oname and e.eid = e1.eid and e.ename = e1.ename
    and p.pname = p1.pname
    and o.Projects = SKProjects(c.cid, c.cname, c.location, p.pid, p.pname, p.cid, p.manager, e.eid, e.ename, e.contact)
}

instance I of CompDB {
  Companies: (11, "IBM", "NY"), (12, "IBM", "NY"), (13, "IBM", "SF"), (14, "SBC", "NY")
  Projects: (P1, "DB", 11, e4), (P2, "Web", 12, e5), (P3, "Search", 13, e5), (P4, "WiFi", 14, e6)
  Employees: (e4, "Jon", x234), (e5, "Anna", x888), (e6, "Kat", x331)
}
`

// narrator wraps an oracle and prints each question the wizard poses,
// the way the Muse UI would show it to a human designer.
type narrator struct {
	inner muse.GroupingDesigner
	n     int
}

func (na *narrator) ChooseScenario(q *muse.GroupingQuestion) (int, error) {
	na.n++
	origin := "synthetic example"
	if q.Real {
		origin = "real example drawn from I"
	}
	fmt.Printf("--- Question %d: probe on %s (%s) ---\n", na.n, q.Probe, origin)
	fmt.Println("Example source Ie:")
	fmt.Print(indent(q.Source.StringCompact()))
	fmt.Printf("Scenario 1 groups by {%s}:\n", exprs(q.Include1))
	fmt.Print(indent(q.Scenario1.StringCompact()))
	fmt.Printf("Scenario 2 groups by {%s}:\n", exprs(q.Include2))
	fmt.Print(indent(q.Scenario2.StringCompact()))
	ans, err := na.inner.ChooseScenario(q)
	if err == nil {
		fmt.Printf("Designer picks scenario %d.\n\n", ans)
	}
	return ans, err
}

func exprs(es []muse.Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}

func indent(s string) string {
	return "    " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n    ") + "\n"
}

func main() {
	doc, err := muse.Parse(scenario)
	if err != nil {
		log.Fatal(err)
	}
	m2 := doc.Mappings[0]
	source := doc.Instances["I"]

	fmt.Println("############ Part 1: no keys (Sec. III-A) ############")
	fmt.Println("The designer has SKProjects(c.cname) in mind.")
	fmt.Println()
	wizard := muse.NewGroupingWizard(doc.Deps["CompDB"], source)
	oracle := muse.NewGroupingOracle("SKProjects", []muse.Expr{muse.E("c", "cname")})
	refined, err := wizard.DesignSK(m2, "SKProjects", &narrator{inner: oracle})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Muse-G inferred: %s\n", refined.SKFor("SKProjects").SK)
	fmt.Printf("(questions: %d, poss size: %d)\n\n",
		wizard.Stats.SKs[0].Questions, wizard.Stats.SKs[0].PossSize)

	fmt.Println("############ Part 2: with keys (Sec. III-B) ############")
	fmt.Println("Companies(cid), Projects(pid), Employees(eid) are keys, and the")
	fmt.Println("designer wants to group by ALL attributes (the G1 default).")
	fmt.Println()
	keyed := doc.Deps["CompDB"]
	keyed.MustAddKey("Companies", "cid")
	keyed.MustAddKey("Projects", "pid")
	keyed.MustAddKey("Employees", "eid")
	wizard2 := muse.NewGroupingWizard(keyed, source)
	oracle2 := muse.NewGroupingOracle("SKProjects", m2.Poss())
	refined2, err := wizard2.DesignSK(m2, "SKProjects", &narrator{inner: oracle2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Muse-G inferred: %s\n", refined2.SKFor("SKProjects").SK)
	fmt.Printf("(questions: %d — Thm 3.2 cut the remaining %d attributes)\n",
		wizard2.Stats.SKs[0].Questions,
		wizard2.Stats.SKs[0].PossSize-wizard2.Stats.SKs[0].Questions)
}
