// Serving: a wizard session over the wire.
//
// Boots the Muse HTTP session server in-process on an ephemeral port
// (the same handler cmd/musesrv serves) and drives a complete Muse-G
// dialog over it with net/http: start a session on the built-in Fig. 1
// scenario, answer the eleven grouping questions so projects group by
// the company name, and print the refined mappings — every o.Projects
// assignment comes back as SKProjects(c.cname), exactly the design the
// paper's running example wants.
//
// The same requests work against a standalone server
// (go run ./cmd/musesrv -addr :8080); see docs/API.md for the wire
// reference and the equivalent curl walkthrough.
//
// Run with: go run ./examples/serving
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	"muse"
)

// envelope mirrors the session-addressed responses of docs/API.md.
type envelope struct {
	Token string `json:"token"`
	Step  struct {
		Seq      int    `json:"seq"`
		State    string `json:"state"`
		Grouping *struct {
			Mapping   string   `json:"mapping"`
			SK        string   `json:"sk"`
			Probe     string   `json:"probe"`
			Confirmed []string `json:"confirmed"`
		} `json:"grouping"`
		Error string `json:"error"`
	} `json:"step"`
}

type result struct {
	Questions int `json:"questions"`
	Mappings  []struct {
		Name string `json:"name"`
		Text string `json:"text"`
	} `json:"mappings"`
}

func call(method, url string, body, into any) error {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return err
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("%s %s: %s", method, url, resp.Status)
	}
	if into == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

func main() {
	// An in-process server: the handler cmd/musesrv serves, on an
	// ephemeral port so the example never collides with a running one.
	mg := muse.NewServerManager(muse.BuiltinScenarios(), muse.NewObs())
	defer mg.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, muse.NewServer(mg))
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving the Muse API on %s\n\n", base)

	// Start a session over the built-in Fig. 1 scenario.
	var env envelope
	if err := call("POST", base+"/v1/sessions", map[string]string{"scenario": "fig1"}, &env); err != nil {
		log.Fatal(err)
	}
	sess := base + "/v1/sessions/" + env.Token

	// The intended design groups each company's projects by the company
	// name: answer 1 (the scenario whose grouping includes the probed
	// attribute) when the probe is c.cname, otherwise 2. With the
	// Companies(cid) key this is an 11-question dialog (Sec. III-B).
	for env.Step.State == "grouping_question" {
		q := env.Step.Grouping
		answer := 2
		if q.Probe == "c.cname" {
			answer = 1
		}
		fmt.Printf("q%-2d %s/%s  probe=%-10s confirmed=%v -> scenario %d\n",
			env.Step.Seq, q.Mapping, q.SK, q.Probe, q.Confirmed, answer)
		if err := call("POST", sess+"/answer", map[string]int{"scenario": answer}, &env); err != nil {
			log.Fatal(err)
		}
	}
	if env.Step.State != "done" {
		log.Fatalf("dialog ended in state %q: %s", env.Step.State, env.Step.Error)
	}

	// Fetch the refined mappings and clean up.
	var res result
	if err := call("GET", sess+"/result", nil, &res); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndesigned in %d questions:\n\n", res.Questions)
	for _, m := range res.Mappings {
		fmt.Println(m.Text)
	}
	if err := call("DELETE", sess, nil, nil); err != nil {
		log.Fatal(err)
	}
}
